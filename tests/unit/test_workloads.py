"""Unit tests for workload generators, YCSB, and db_bench suites."""

import pytest

from repro.baselines import LocalOnlyConfig, LocalOnlyStore
from repro.workloads import dbbench, ycsb
from repro.workloads.generator import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_key,
    make_request_generator,
    make_value,
    perceived_skew,
)


def make_store():
    return LocalOnlyStore.create(LocalOnlyConfig().small())


class TestKeyValue:
    def test_keys_fixed_width_sorted(self):
        keys = [make_key(i) for i in range(1000)]
        assert keys == sorted(keys)
        assert len({len(k) for k in keys}) == 1

    def test_values_deterministic(self):
        assert make_value(42, 100) == make_value(42, 100)
        assert make_value(42, 100) != make_value(43, 100)
        assert len(make_value(7, 333)) == 333


class TestGenerators:
    def test_sequential(self):
        gen = SequentialGenerator(5)
        assert [gen.next() for _ in range(7)] == [0, 1, 2, 3, 4, 0, 1]

    def test_uniform_range_and_coverage(self):
        gen = UniformGenerator(100, seed=3)
        samples = [gen.next() for _ in range(5000)]
        assert min(samples) >= 0 and max(samples) < 100
        assert len(set(samples)) > 90

    def test_zipfian_rank_skew(self):
        gen = ZipfianGenerator(1000, seed=5)
        samples = [gen.next() for _ in range(20000)]
        assert all(0 <= s < 1000 for s in samples)
        # Item 0 must be by far the most popular.
        top = samples.count(0) / len(samples)
        assert top > 0.05
        uniform_gen = UniformGenerator(1000, seed=5)
        uniform_samples = [uniform_gen.next() for _ in range(20000)]
        assert perceived_skew(samples) > perceived_skew(uniform_samples)

    def test_scrambled_zipfian_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(1000, seed=5)
        samples = [gen.next() for _ in range(20000)]
        # Still skewed overall...
        assert perceived_skew(samples) > 0.1
        # ...but the hottest item is no longer rank 0.
        from collections import Counter

        hottest = Counter(samples).most_common(1)[0][0]
        assert hottest != 0

    def test_latest_prefers_recent(self):
        gen = LatestGenerator(1000, seed=5)
        samples = [gen.next() for _ in range(5000)]
        recent = sum(s >= 900 for s in samples) / len(samples)
        assert recent > 0.5

    def test_latest_tracks_growth(self):
        gen = LatestGenerator(100, seed=5)
        gen.set_count(2000)
        samples = [gen.next() for _ in range(2000)]
        assert max(samples) > 1500

    def test_factory(self):
        for dist in ("uniform", "zipfian", "latest", "sequential"):
            gen = make_request_generator(dist, 10)
            assert 0 <= gen.next() < 10
        with pytest.raises(ValueError):
            make_request_generator("gaussian", 10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestYCSBSpecs:
    def test_proportions_validated(self):
        with pytest.raises(ValueError):
            ycsb.YCSBSpec("bad", read_proportion=0.5)

    def test_standard_workloads_well_formed(self):
        assert set(ycsb.ALL_WORKLOADS) == set("ABCDEF")
        assert ycsb.WORKLOAD_C.read_proportion == 1.0
        assert ycsb.WORKLOAD_D.request_distribution == "latest"
        assert ycsb.WORKLOAD_E.scan_proportion == 0.95

    def test_scaled(self):
        spec = ycsb.WORKLOAD_A.scaled(123, 456)
        assert spec.record_count == 123
        assert spec.operation_count == 456
        assert spec.read_proportion == 0.5


class TestYCSBRun:
    def test_load_then_run_counts(self):
        store = make_store()
        spec = ycsb.WORKLOAD_A.scaled(200, 300)
        result = ycsb.run_workload(store, spec, seed=1)
        assert result.operations == 300
        assert sum(result.op_counts.values()) == 300
        assert result.op_counts["read"] > 0
        assert result.op_counts["update"] > 0
        assert result.elapsed_seconds > 0
        assert result.throughput > 0

    def test_workload_c_reads_mostly_found(self):
        store = make_store()
        spec = ycsb.WORKLOAD_C.scaled(300, 300)
        result = ycsb.run_workload(store, spec, seed=2)
        assert result.found > result.not_found

    def test_workload_d_inserts_grow_keyspace(self):
        store = make_store()
        spec = ycsb.WORKLOAD_D.scaled(200, 400)
        result = ycsb.run_workload(store, spec, seed=3)
        assert result.op_counts["insert"] > 0
        assert store.get(make_key(200)) is not None  # first inserted key

    def test_workload_e_scans(self):
        store = make_store()
        spec = ycsb.WORKLOAD_E.scaled(200, 100)
        result = ycsb.run_workload(store, spec, seed=4)
        assert result.op_counts["scan"] > 0

    def test_deterministic_given_seed(self):
        def run():
            store = make_store()
            spec = ycsb.WORKLOAD_A.scaled(150, 200)
            result = ycsb.run_workload(store, spec, seed=9)
            return (result.op_counts, result.found, round(result.elapsed_seconds, 9))

        assert run() == run()

    def test_scan_and_rmw_get_their_own_histograms(self):
        store = make_store()
        spec = ycsb.YCSBSpec(
            "mix",
            read_proportion=0.25,
            update_proportion=0.25,
            scan_proportion=0.25,
            rmw_proportion=0.25,
            record_count=200,
            operation_count=200,
        )
        result = ycsb.run_workload(store, spec, seed=5)
        assert result.scan_latency.count == result.op_counts["scan"] > 0
        assert result.rmw_latency.count == result.op_counts["rmw"] > 0
        assert result.read_latency.count == result.op_counts["read"] > 0
        assert (
            result.update_latency.count
            == result.op_counts["update"] + result.op_counts["insert"]
        )

    def test_latency_for_rejects_unknown_kind(self):
        result = ycsb.YCSBResult("A", "s", 0, 0.0)
        with pytest.raises(ValueError):
            result.latency_for("mystery")


class TestOpStream:
    """The deterministic op stream both runners consume (iter_ops)."""

    def test_iter_ops_deterministic(self):
        spec = ycsb.WORKLOAD_A.scaled(150, 300)
        assert list(ycsb.iter_ops(spec, seed=9)) == list(ycsb.iter_ops(spec, seed=9))

    def test_iter_ops_seed_changes_stream(self):
        spec = ycsb.WORKLOAD_A.scaled(150, 300)
        assert list(ycsb.iter_ops(spec, seed=1)) != list(ycsb.iter_ops(spec, seed=2))

    def test_ops_digest_stable_and_seed_sensitive(self):
        spec = ycsb.WORKLOAD_F.scaled(100, 200)
        assert ycsb.ops_digest(spec, seed=3) == ycsb.ops_digest(spec, seed=3)
        assert ycsb.ops_digest(spec, seed=3) != ycsb.ops_digest(spec, seed=4)

    def test_stream_matches_mix_and_count(self):
        spec = ycsb.WORKLOAD_E.scaled(200, 400)
        ops = list(ycsb.iter_ops(spec, seed=6))
        assert len(ops) == 400
        kinds = {op.kind for op in ops}
        assert kinds <= set(ycsb.OP_KINDS)
        scans = [op for op in ops if op.kind == "scan"]
        assert scans and all(1 <= op.limit <= spec.max_scan_length for op in scans)
        inserts = [op for op in ops if op.kind == "insert"]
        # Inserts extend the keyspace: fresh keys at/above record_count.
        assert inserts and all(op.key >= make_key(200) for op in inserts)

    def test_run_phase_consumes_identical_stream(self):
        # The closed-loop runner and a hand-rolled apply_op loop over
        # iter_ops leave byte-identical store state.
        spec = ycsb.WORKLOAD_A.scaled(150, 250)

        store_a = make_store()
        ycsb.load_phase(store_a, spec)
        ycsb.run_phase(store_a, spec, seed=11)

        store_b = make_store()
        ycsb.load_phase(store_b, spec)
        for op in ycsb.iter_ops(spec, seed=11):
            ycsb.apply_op(store_b, op)

        scan_a = store_a.scan(None, None)
        assert scan_a == store_b.scan(None, None)
        assert len(scan_a) >= spec.record_count

    def test_apply_op_rmw_keeps_prefix(self):
        store = make_store()
        store.put(b"k", b"A" * 10)
        op = ycsb.Op("rmw", b"k", value=b"B" * 5, limit=5)
        ycsb.apply_op(store, op)
        assert store.get(b"k") == b"A" * 5 + b"B" * 5

    def test_apply_op_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ycsb.apply_op(make_store(), ycsb.Op("nope", b"k"))

    def test_outcome_digest_distinguishes_read_results(self):
        import hashlib

        def digest(outcome):
            h = hashlib.sha256()
            ycsb.outcome_digest_update(h, ycsb.Op("read", b"k"), outcome)
            return h.hexdigest()

        assert digest(None) != digest(b"")
        assert digest(b"x") != digest(b"y")


class TestDbBench:
    def test_fillseq_and_readseq(self):
        store = make_store()
        r = dbbench.fillseq(store, 300)
        assert r.operations == 300 and r.ops_per_second > 0
        rs = dbbench.readseq(store, 300)
        assert rs.found == 300

    def test_fillrandom_overwrites_allowed(self):
        store = make_store()
        r = dbbench.fillrandom(store, 300)
        assert r.operations == 300
        assert len(store.scan()) <= 300  # duplicates collapse

    def test_readrandom_found_counts(self):
        store = make_store()
        dbbench.fill_database(store, 200)
        r = dbbench.readrandom(store, 100, 200)
        assert r.found == 100  # every key exists

    def test_seekrandom(self):
        store = make_store()
        dbbench.fill_database(store, 200)
        r = dbbench.seekrandom(store, 20, 200, scan_length=5)
        assert 0 < r.found <= 100

    def test_readwhilewriting_mixes(self):
        store = make_store()
        dbbench.fill_database(store, 200)
        r = dbbench.readwhilewriting(store, 100, 200, write_every=10)
        assert r.found > 0
        assert r.micros_per_op > 0
