"""Unit tests for compaction-aware layouts (heat tracking + inheritance)."""

import pytest

from repro.lsm.compaction import CompactionEvent, CompactionOutput
from repro.lsm.format import BlockHandle
from repro.lsm.table_builder import BlockMeta, TableProperties
from repro.lsm.version import FileMetaData
from repro.mash.layout import BlockHeatTracker, LayoutConfig
from repro.util.encoding import TYPE_VALUE, make_internal_key


def ikey(user_key: bytes, seq: int = 10) -> bytes:
    return make_internal_key(user_key, seq, TYPE_VALUE)


def block(first: bytes, last: bytes, offset: int, size: int = 100) -> BlockMeta:
    return BlockMeta(ikey(first), ikey(last), BlockHandle(offset, size))


def fmd(number: int, lo: bytes, hi: bytes) -> FileMetaData:
    return FileMetaData(number, 1000, ikey(lo), ikey(hi))


def compaction_event(input_metas, outputs):
    return CompactionEvent(
        level=1,
        output_level=2,
        input_files=input_metas,
        outputs=outputs,
        dropped_entries=0,
    )


def output_of(number: int, blocks: list[BlockMeta]) -> CompactionOutput:
    props = TableProperties(blocks=blocks)
    meta = fmd(number, b"", b"")
    return CompactionOutput(meta, props)


NAME_OF = lambda number: f"db/{number:06d}.sst"


class TestHeatTracking:
    def test_record_and_query(self):
        tracker = BlockHeatTracker()
        tracker.record_access("f.sst", 0)
        tracker.record_access("f.sst", 0, weight=2.5)
        assert tracker.heat_of("f.sst", 0) == pytest.approx(3.5)
        assert tracker.heat_of("f.sst", 100) == 0.0

    def test_register_and_forget(self):
        tracker = BlockHeatTracker()
        tracker.register_file("f.sst", [block(b"a", b"m", 0)])
        assert tracker.knows_file("f.sst")
        tracker.record_access("f.sst", 0)
        tracker.forget_file("f.sst")
        assert not tracker.knows_file("f.sst")
        assert tracker.heat_of("f.sst", 0) == 0.0


class TestInheritance:
    def _tracker_with_hot_input(self, config=None):
        tracker = BlockHeatTracker(config or LayoutConfig(prewarm_heat_threshold=1.0))
        # Input file #1: two blocks, the [a..f] block is hot.
        tracker.register_file(NAME_OF(1), [block(b"a", b"f", 0), block(b"g", b"p", 200)])
        for _ in range(10):
            tracker.record_access(NAME_OF(1), 0)
        return tracker

    def test_overlapping_output_inherits(self):
        tracker = self._tracker_with_hot_input()
        out_blocks = [block(b"a", b"c", 0), block(b"d", b"h", 200), block(b"x", b"z", 400)]
        tracker.register_file(NAME_OF(9), out_blocks)
        event = compaction_event([fmd(1, b"a", b"p")], [output_of(9, out_blocks)])
        plan = tracker.plan_inheritance(event, NAME_OF)
        planned_offsets = {b.handle.offset for _, b, _ in plan}
        assert 0 in planned_offsets  # [a..c] overlaps hot [a..f]
        assert 200 in planned_offsets  # [d..h] overlaps hot [a..f]
        assert 400 not in planned_offsets  # [x..z] does not

    def test_cold_inputs_produce_empty_plan(self):
        tracker = BlockHeatTracker(LayoutConfig(prewarm_heat_threshold=1.0))
        tracker.register_file(NAME_OF(1), [block(b"a", b"f", 0)])
        out = [block(b"a", b"f", 0)]
        tracker.register_file(NAME_OF(9), out)
        event = compaction_event([fmd(1, b"a", b"f")], [output_of(9, out)])
        assert tracker.plan_inheritance(event, NAME_OF) == []

    def test_naive_mode_never_plans(self):
        tracker = self._tracker_with_hot_input(LayoutConfig(aware=False))
        out = [block(b"a", b"f", 0)]
        tracker.register_file(NAME_OF(9), out)
        event = compaction_event([fmd(1, b"a", b"p")], [output_of(9, out)])
        assert tracker.plan_inheritance(event, NAME_OF) == []

    def test_trivial_move_never_plans(self):
        tracker = self._tracker_with_hot_input()
        event = CompactionEvent(
            level=1, output_level=2, input_files=[fmd(1, b"a", b"p")], outputs=[],
            dropped_entries=0, trivial_move=True,
        )
        assert tracker.plan_inheritance(event, NAME_OF) == []

    def test_threshold_filters(self):
        config = LayoutConfig(prewarm_heat_threshold=100.0)
        tracker = self._tracker_with_hot_input(config)  # heat 10 < 100
        out = [block(b"a", b"f", 0)]
        tracker.register_file(NAME_OF(9), out)
        event = compaction_event([fmd(1, b"a", b"p")], [output_of(9, out)])
        assert tracker.plan_inheritance(event, NAME_OF) == []

    def test_budget_caps_plan(self):
        config = LayoutConfig(prewarm_heat_threshold=0.1, prewarm_budget_blocks=2)
        tracker = BlockHeatTracker(config)
        in_blocks = [block(bytes([c]), bytes([c]), c * 100) for c in range(97, 107)]
        tracker.register_file(NAME_OF(1), in_blocks)
        for b in in_blocks:
            tracker.record_access(NAME_OF(1), b.handle.offset, weight=5)
        out_blocks = [block(bytes([c]), bytes([c]), c * 100) for c in range(97, 107)]
        tracker.register_file(NAME_OF(9), out_blocks)
        event = compaction_event([fmd(1, b"a", b"z")], [output_of(9, out_blocks)])
        plan = tracker.plan_inheritance(event, NAME_OF)
        assert len(plan) == 2

    def test_hottest_first(self):
        config = LayoutConfig(prewarm_heat_threshold=0.1)
        tracker = BlockHeatTracker(config)
        in_blocks = [block(b"a", b"b", 0), block(b"c", b"d", 100)]
        tracker.register_file(NAME_OF(1), in_blocks)
        tracker.record_access(NAME_OF(1), 0, weight=1)
        tracker.record_access(NAME_OF(1), 100, weight=50)
        out_blocks = [block(b"a", b"b", 0), block(b"c", b"d", 100)]
        tracker.register_file(NAME_OF(9), out_blocks)
        event = compaction_event([fmd(1, b"a", b"d")], [output_of(9, out_blocks)])
        plan = tracker.plan_inheritance(event, NAME_OF)
        assert plan[0][1].handle.offset == 100  # hottest first

    def test_inherited_heat_seeds_future_rounds(self):
        tracker = self._tracker_with_hot_input()
        out = [block(b"a", b"f", 0)]
        tracker.register_file(NAME_OF(9), out)
        event = compaction_event([fmd(1, b"a", b"p")], [output_of(9, out)])
        tracker.plan_inheritance(event, NAME_OF)
        assert tracker.heat_of(NAME_OF(9), 0) > 0

    def test_unregistered_files_skipped_gracefully(self):
        tracker = BlockHeatTracker()
        event = compaction_event([fmd(1, b"a", b"p")], [output_of(9, [])])
        assert tracker.plan_inheritance(event, NAME_OF) == []
