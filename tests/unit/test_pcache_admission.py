"""Unit tests for frequency-biased pcache admission."""

import pytest

from repro.mash.pcache import PCacheConfig, PersistentCache
from repro.sim.clock import SimClock
from repro.storage.local import LocalDevice


def cache_with(admit_after, ghost=4096):
    device = LocalDevice(SimClock())
    return PersistentCache.open(
        device,
        PCacheConfig(
            data_budget_bytes=100_000,
            sync_every_n_appends=1,
            admit_after_accesses=admit_after,
            ghost_entries=ghost,
        ),
    )


class TestAdmission:
    def test_default_admits_immediately(self):
        cache = cache_with(1)
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) == b"payload"
        assert cache.stats.admission_rejections == 0

    def test_second_offer_admits(self):
        cache = cache_with(2)
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) is None  # first offer rejected
        assert cache.stats.admission_rejections == 1
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) == b"payload"

    def test_distinct_blocks_counted_separately(self):
        cache = cache_with(2)
        cache.put_data("t.sst", 0, b"a")
        cache.put_data("t.sst", 100, b"b")
        assert cache.get_data("t.sst", 0) is None
        assert cache.get_data("t.sst", 100) is None

    def test_force_bypasses_policy(self):
        cache = cache_with(5)
        cache.put_data("t.sst", 0, b"prewarmed", force=True)
        assert cache.get_data("t.sst", 0) == b"prewarmed"

    def test_one_off_scan_does_not_pollute(self):
        cache = cache_with(2)
        # A scan offers each block once; none should be stored.
        for offset in range(0, 5000, 100):
            cache.put_data("scan.sst", offset, bytes(50))
        assert cache.data_bytes == 0
        # A genuinely hot block offered twice gets in.
        cache.put_data("hot.sst", 0, b"hot")
        cache.put_data("hot.sst", 0, b"hot")
        assert cache.get_data("hot.sst", 0) == b"hot"

    def test_ghost_map_bounded(self):
        cache = cache_with(2, ghost=10)
        for offset in range(100):
            cache.put_data("t.sst", offset, b"x")
        assert len(cache._ghost) <= 10

    def test_counter_cleared_after_admission(self):
        cache = cache_with(2)
        cache.put_data("t.sst", 0, b"x")
        cache.put_data("t.sst", 0, b"x")
        assert ("t.sst", 0) not in cache._ghost


class TestAdmissionSurvivesSync:
    """Regression: sync() used to wipe the ghost admission counters, so a
    block re-offered after any intervening sync restarted its count from
    zero — with admit_after_accesses > 1 it could never be admitted under
    steady traffic."""

    def test_offer_sync_offer_admits(self):
        cache = cache_with(2)
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) is None  # first offer rejected
        cache.sync()  # durability boundary between the two offers
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) == b"payload"

    def test_metadata_pin_between_offers_does_not_reset(self):
        # put_meta triggers slab appends (and, with sync_every_n_appends=1,
        # implicit syncs) between the two data offers.
        cache = cache_with(2)
        cache.put_data("t.sst", 0, b"payload")
        cache.put_meta("t.sst", "index", b"index-bytes")
        cache.put_data("t.sst", 0, b"payload")
        assert cache.get_data("t.sst", 0) == b"payload"

    def test_rejections_bounded_under_steady_traffic(self):
        cache = cache_with(2)
        for _ in range(10):
            cache.put_data("hot.sst", 0, b"hot")
            cache.sync()
        # Exactly one rejection (the first offer); the second offer admits
        # and every later one finds the block already cached.
        assert cache.stats.admission_rejections == 1
        assert cache.get_data("hot.sst", 0) == b"hot"
