"""Unit tests for compaction picking and scoring."""

import pytest

from repro.lsm.compaction import Compaction, CompactionPicker
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version, VersionEdit
from repro.util.encoding import TYPE_VALUE, make_internal_key


def fmd(number, lo, hi, size=1000):
    return FileMetaData(
        number=number,
        file_size=size,
        smallest=make_internal_key(lo, 10, TYPE_VALUE),
        largest=make_internal_key(hi, 10, TYPE_VALUE),
    )


def version_with(*placements):
    """placements: (level, FileMetaData) pairs."""
    v = Version(7)
    edit = VersionEdit()
    for level, meta in placements:
        edit.add_file(level, meta)
    return v.apply(edit)


def options():
    return Options(
        level0_file_num_compaction_trigger=4,
        max_bytes_for_level_base=10_000,
        level_size_multiplier=10,
    )


class TestScoring:
    def test_empty_version_scores_zero(self):
        picker = CompactionPicker(options())
        scores = picker.compute_scores(Version(7))
        assert all(score < 1.0 for score, _ in scores)

    def test_l0_count_score(self):
        picker = CompactionPicker(options())
        v = version_with(*[(0, fmd(i, b"a", b"z")) for i in range(1, 5)])
        scores = dict((lvl, s) for s, lvl in picker.compute_scores(v))
        assert scores[0] == pytest.approx(1.0)

    def test_level_byte_score(self):
        picker = CompactionPicker(options())
        v = version_with((1, fmd(1, b"a", b"m", size=20_000)))
        scores = dict((lvl, s) for s, lvl in picker.compute_scores(v))
        assert scores[1] == pytest.approx(2.0)

    def test_highest_score_first(self):
        picker = CompactionPicker(options())
        v = version_with(
            (1, fmd(1, b"a", b"m", size=15_000)),  # score 1.5
            *[(0, fmd(i, b"a", b"z")) for i in range(2, 10)],  # score 2.0
        )
        best_score, level = picker.compute_scores(v)[0]
        assert level == 0
        assert best_score == pytest.approx(2.0)


class TestPicking:
    def test_nothing_to_do(self):
        picker = CompactionPicker(options())
        v = version_with((0, fmd(1, b"a", b"z")))
        assert picker.pick(v) is None

    def test_l0_pick_takes_all_overlapping(self):
        picker = CompactionPicker(options())
        v = version_with(
            (0, fmd(1, b"a", b"f")),
            (0, fmd(2, b"e", b"k")),
            (0, fmd(3, b"j", b"p")),
            (0, fmd(4, b"o", b"z")),
            (1, fmd(5, b"a", b"m")),
        )
        compaction = picker.pick(v)
        assert compaction is not None
        assert compaction.level == 0
        assert {m.number for m in compaction.inputs} == {1, 2, 3, 4}
        assert {m.number for m in compaction.overlaps} == {5}

    def test_deep_level_pick_single_file_plus_overlaps(self):
        picker = CompactionPicker(options())
        v = version_with(
            (1, fmd(1, b"a", b"f", size=20_000)),
            (2, fmd(2, b"a", b"c")),
            (2, fmd(3, b"d", b"k")),
            (2, fmd(4, b"x", b"z")),
        )
        compaction = picker.pick(v)
        assert compaction.level == 1
        assert [m.number for m in compaction.inputs] == [1]
        assert {m.number for m in compaction.overlaps} == {2, 3}

    def test_cursor_rotates_through_level(self):
        picker = CompactionPicker(options())
        v = version_with(
            (1, fmd(1, b"a", b"f", size=12_000)),
            (1, fmd(2, b"g", b"p", size=12_000)),
        )
        first = picker.pick(v)
        second = picker.pick(v)
        assert first.inputs[0].number != second.inputs[0].number

    def test_cursor_wraps_around(self):
        picker = CompactionPicker(options())
        v = version_with((1, fmd(1, b"a", b"f", size=12_000)))
        a = picker.pick(v)
        b = picker.pick(v)  # cursor past end -> wraps to the same file
        assert a.inputs[0].number == b.inputs[0].number == 1

    def test_trivial_move_detection(self):
        c = Compaction(level=1, inputs=[fmd(1, b"a", b"f")], overlaps=[], score=1.5)
        assert c.is_trivial_move()
        c2 = Compaction(
            level=1, inputs=[fmd(1, b"a", b"f")], overlaps=[fmd(2, b"a", b"c")], score=1.5
        )
        assert not c2.is_trivial_move()
        assert c2.output_level == 2
