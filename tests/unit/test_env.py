"""Unit tests for the Env abstraction (local, cloud, hybrid)."""

import pytest

from repro.errors import ClosedError, NotFoundError
from repro.sim.clock import SimClock
from repro.storage.cloud import CloudObjectStore
from repro.storage.env import CLOUD, LOCAL, CloudEnv, HybridEnv, LocalEnv
from repro.storage.local import LocalDevice


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def local_env(clock):
    return LocalEnv(LocalDevice(clock))


@pytest.fixture
def cloud_env(clock):
    return CloudEnv(CloudObjectStore(clock))


def _exercise_env(env):
    """Shared conformance checks for any Env implementation."""
    wf = env.new_writable_file("dir/file1")
    wf.append(b"hello ")
    wf.sync()
    wf.append(b"world")
    wf.close()
    assert env.file_exists("dir/file1")
    assert env.file_size("dir/file1") == 11
    assert env.read_file("dir/file1") == b"hello world"

    raf = env.new_random_access_file("dir/file1")
    assert raf.read(6, 5) == b"world"
    assert raf.size() == 11

    env.write_file("dir/file2", b"atomic")
    assert env.read_file("dir/file2") == b"atomic"
    env.rename_file("dir/file2", "dir/file3")
    assert not env.file_exists("dir/file2")
    assert env.read_file("dir/file3") == b"atomic"

    assert env.list_files("dir/") == ["dir/file1", "dir/file3"]
    env.delete_file("dir/file3")
    assert not env.file_exists("dir/file3")


class TestLocalEnv:
    def test_conformance(self, local_env):
        _exercise_env(local_env)

    def test_closed_file_rejects_io(self, local_env):
        wf = local_env.new_writable_file("f")
        wf.close()
        with pytest.raises(ClosedError):
            wf.append(b"x")

    def test_double_close_ok(self, local_env):
        wf = local_env.new_writable_file("f")
        wf.close()
        wf.close()


class TestCloudEnv:
    def test_conformance(self, cloud_env):
        _exercise_env(cloud_env)

    def test_sync_reputs_whole_object(self, cloud_env):
        wf = cloud_env.new_writable_file("obj")
        wf.append(b"data")
        assert not cloud_env.file_exists("obj")  # nothing synced yet
        wf.sync()
        assert cloud_env.read_file("obj") == b"data"  # durable after sync
        wf.append(b"-more")
        wf.close()
        assert cloud_env.read_file("obj") == b"data-more"
        # Each sync re-uploaded the whole buffer: 4 + 9 bytes charged.
        assert cloud_env.store.counters.get("cloud.put_bytes") == 13

    def test_unsynced_appends_not_visible(self, cloud_env):
        wf = cloud_env.new_writable_file("obj")
        wf.append(b"v1")
        wf.sync()
        wf.append(b"v2")  # never synced or closed (crash)
        assert cloud_env.read_file("obj") == b"v1"

    def test_delete_missing_raises(self, cloud_env):
        with pytest.raises(NotFoundError):
            cloud_env.delete_file("missing")


class TestHybridEnv:
    @pytest.fixture
    def hybrid(self, local_env, cloud_env):
        # Route *.log local, everything else cloud.
        return HybridEnv(
            local_env, cloud_env, lambda name: LOCAL if name.endswith(".log") else CLOUD
        )

    def test_conformance(self, local_env, cloud_env):
        env = HybridEnv(local_env, cloud_env, lambda name: LOCAL)
        _exercise_env(env)

    def test_routing(self, hybrid, local_env, cloud_env):
        hybrid.write_file("000001.log", b"wal")
        hybrid.write_file("000002.sst", b"table")
        assert local_env.file_exists("000001.log")
        assert not cloud_env.file_exists("000001.log")
        assert cloud_env.file_exists("000002.sst")
        assert hybrid.tier_of("000001.log") == LOCAL
        assert hybrid.tier_of("000002.sst") == CLOUD

    def test_list_merges_tiers(self, hybrid):
        hybrid.write_file("a.log", b"1")
        hybrid.write_file("b.sst", b"2")
        assert hybrid.list_files() == ["a.log", "b.sst"]

    def test_reads_find_either_tier(self, hybrid):
        hybrid.write_file("a.log", b"local-data")
        hybrid.write_file("b.sst", b"cloud-data")
        assert hybrid.read_file("a.log") == b"local-data"
        assert hybrid.read_file("b.sst") == b"cloud-data"

    def test_tier_rediscovery_after_registry_loss(self, hybrid, local_env, cloud_env):
        hybrid.write_file("a.log", b"x")
        hybrid._registry.clear()  # simulate process restart
        assert hybrid.tier_of("a.log") == LOCAL

    def test_migrate(self, hybrid, local_env, cloud_env):
        hybrid.write_file("a.log", b"payload")
        hybrid.migrate("a.log", CLOUD)
        assert cloud_env.read_file("a.log") == b"payload"
        assert not local_env.file_exists("a.log")
        assert hybrid.tier_of("a.log") == CLOUD
        hybrid.migrate("a.log", CLOUD)  # no-op
        assert hybrid.read_file("a.log") == b"payload"

    def test_missing_everywhere_raises(self, hybrid):
        with pytest.raises(NotFoundError):
            hybrid.tier_of("ghost")
        assert not hybrid.file_exists("ghost")

    def test_rename_stays_on_tier(self, hybrid, local_env):
        hybrid.write_file("a.log", b"x")
        hybrid.rename_file("a.log", "b.anything")
        assert local_env.file_exists("b.anything")
        assert hybrid.tier_of("b.anything") == LOCAL
