"""Unit tests for the extended (sharded) WAL."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.write_batch import WriteBatch
from repro.mash.xwal import (
    XWalConfig,
    XWalReplayer,
    XWalWriter,
    decode_shard_record,
    encode_shard_record,
    shard_of,
)
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE


@pytest.fixture
def device():
    return LocalDevice(SimClock())


@pytest.fixture
def env(device):
    return LocalEnv(device)


def write_generation(env, device, ops_batches, *, shards=4, number=7):
    config = XWalConfig(num_shards=shards)
    writer = XWalWriter(env, device, "db/", number, config)
    for batch in ops_batches:
        writer.add_record(batch.encode())
    writer.close()
    return config


class TestShardRecord:
    def test_roundtrip(self):
        ops = [
            (10, TYPE_VALUE, b"key1", b"value1"),
            (11, TYPE_DELETION, b"key2", b""),
            (12, TYPE_VALUE, b"", b""),
        ]
        assert decode_shard_record(encode_shard_record(ops)) == ops

    def test_empty(self):
        assert decode_shard_record(encode_shard_record([])) == []

    def test_truncated_raises(self):
        data = encode_shard_record([(1, TYPE_VALUE, b"key", b"value")])
        with pytest.raises(CorruptionError):
            decode_shard_record(data[:-2])

    def test_trailing_garbage_raises(self):
        data = encode_shard_record([(1, TYPE_VALUE, b"k", b"v")])
        with pytest.raises(CorruptionError):
            decode_shard_record(data + b"x")


class TestSharding:
    def test_deterministic(self):
        assert shard_of(b"somekey", 8) == shard_of(b"somekey", 8)

    def test_within_range(self):
        for i in range(100):
            assert 0 <= shard_of(f"k{i}".encode(), 5) < 5

    def test_distribution_roughly_uniform(self):
        counts = [0] * 4
        for i in range(4000):
            counts[shard_of(f"key-{i}".encode(), 4)] += 1
        assert min(counts) > 600  # each shard gets a fair share

    def test_single_shard(self):
        assert shard_of(b"anything", 1) == 0

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            XWalConfig(num_shards=0)


class TestWriteReplay:
    def test_roundtrip_all_ops(self, env, device):
        batches = []
        seq = 1
        for b in range(10):
            batch = WriteBatch()
            for i in range(7):
                if (b + i) % 5 == 0:
                    batch.delete(f"key-{b}-{i}".encode())
                else:
                    batch.put(f"key-{b}-{i}".encode(), f"val-{b}-{i}".encode())
            batch.sequence = seq
            seq += len(batch)
            batches.append(batch)
        config = write_generation(env, device, batches)

        replayer = XWalReplayer(env, device, "db/", config)
        ops = list(replayer.replay(7))
        assert replayer.records_replayed == 70
        # Every (seq, key, value) written is recovered exactly once.
        expected = set()
        seq = 1
        for batch in batches:
            s = batch.sequence
            for op in batch:
                expected.add((s, op.value_type, op.key, op.value))
                s += 1
        assert set(ops) == expected

    def test_per_key_shard_affinity(self, env, device):
        # All updates of one key land in the same shard file.
        batch1 = WriteBatch().put(b"mykey", b"v1")
        batch1.sequence = 1
        batch2 = WriteBatch().put(b"mykey", b"v2")
        batch2.sequence = 2
        config = write_generation(env, device, [batch1, batch2], shards=4)
        shard = shard_of(b"mykey", 4)
        replayer = XWalReplayer(env, device, "db/", config)
        names_with_data = [
            n for n in replayer.shard_file_names(7) if device.exists(n) and device.size(n) > 0
        ]
        assert names_with_data == [f"db/000007-{shard:02d}.xlog"]

    def test_replay_missing_generation_empty(self, env, device):
        replayer = XWalReplayer(env, device, "db/", XWalConfig())
        assert list(replayer.replay(99)) == []

    def test_corrupt_shard_tolerated(self, env, device):
        batch = WriteBatch()
        for i in range(40):
            batch.put(f"key-{i}".encode(), b"v" * 20)
        batch.sequence = 1
        config = write_generation(env, device, [batch], shards=4)
        # Corrupt one shard's tail.
        victim = "db/000007-00.xlog"
        data = bytearray(device.read(victim))
        data[-1] ^= 0xFF
        device.delete(victim)
        device.write_file(victim, bytes(data))
        replayer = XWalReplayer(env, device, "db/", config)
        ops = list(replayer.replay(7))
        assert replayer.corrupt_shards == 1
        assert 0 < len(ops) < 40  # other shards fully recovered

    def test_unsynced_batch_lost_on_crash(self, env, device):
        config = XWalConfig(num_shards=2)
        writer = XWalWriter(env, device, "db/", 7, config)
        b1 = WriteBatch().put(b"durable", b"v")
        b1.sequence = 1
        writer.add_record(b1.encode(), sync=True)
        b2 = WriteBatch().put(b"volatile", b"v")
        b2.sequence = 2
        writer.add_record(b2.encode(), sync=False)
        device.crash()
        replayer = XWalReplayer(env, device, "db/", config)
        keys = {op[2] for op in replayer.replay(7)}
        assert b"durable" in keys
        assert b"volatile" not in keys


class TestParallelTiming:
    def _recovery_time(self, shards, records=400):
        clock = SimClock()
        device = LocalDevice(clock)
        env = LocalEnv(device)
        config = XWalConfig(num_shards=shards, apply_cost_per_record=10e-6)
        writer = XWalWriter(env, device, "db/", 1, config)
        seq = 1
        for i in range(records):
            batch = WriteBatch().put(f"key-{i:06d}".encode(), b"v" * 100)
            batch.sequence = seq
            seq += 1
            writer.add_record(batch.encode())
        writer.close()
        start = clock.now
        replayer = XWalReplayer(env, device, "db/", config)
        ops = list(replayer.replay(1))
        assert len(ops) == records
        return clock.now - start

    def test_more_shards_recover_faster(self):
        t1 = self._recovery_time(1)
        t4 = self._recovery_time(4)
        t8 = self._recovery_time(8)
        assert t4 < t1 / 2
        assert t8 < t4

    def test_multi_shard_batch_sync_charged_as_max(self):
        # A batch touching many shards must not pay num_shards * sync cost.
        def fill_time(shards):
            clock = SimClock()
            device = LocalDevice(clock)
            env = LocalEnv(device)
            writer = XWalWriter(env, device, "db/", 1, XWalConfig(num_shards=shards))
            start = clock.now
            batch = WriteBatch()
            for i in range(64):
                batch.put(f"key-{i}".encode(), b"v" * 50)
            batch.sequence = 1
            writer.add_record(batch.encode(), sync=True)
            return clock.now - start

        t1, t8 = fill_time(1), fill_time(8)
        assert t8 < t1 * 3  # parallel syncs, not 8x serial cost
