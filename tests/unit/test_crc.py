"""Unit tests for masked CRC checksums."""

from repro.util.crc import crc32, mask, masked_crc32, unmask, verify_masked_crc32


class TestCrc:
    def test_deterministic(self):
        assert crc32(b"hello") == crc32(b"hello")

    def test_different_data_differs(self):
        assert crc32(b"hello") != crc32(b"hellp")

    def test_chained_seed(self):
        whole = crc32(b"ab")
        chained = crc32(b"b", seed=crc32(b"a"))
        assert whole == chained

    def test_empty(self):
        assert crc32(b"") == 0


class TestMasking:
    def test_mask_roundtrip(self):
        for value in [0, 1, 0xDEADBEEF, 0xFFFFFFFF, crc32(b"data")]:
            assert unmask(mask(value)) == value

    def test_mask_changes_value(self):
        value = crc32(b"payload")
        assert mask(value) != value

    def test_verify_accepts_valid(self):
        data = b"record payload"
        assert verify_masked_crc32(data, masked_crc32(data))

    def test_verify_rejects_corruption(self):
        data = b"record payload"
        stored = masked_crc32(data)
        assert not verify_masked_crc32(data + b"x", stored)
        assert not verify_masked_crc32(data, stored ^ 1)
