"""Unit tests for the hybrid placement policy."""

import pytest

from repro.lsm.format import table_file_name
from repro.mash.placement import PlacementConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.storage.env import CLOUD, LOCAL


def build_store(**placement_kw):
    config = StoreConfig(placement=PlacementConfig(**placement_kw)).small()
    return RocksMashStore.create(config)


def fill(store, n, vlen=80):
    for i in range(n):
        store.put(f"key{i:06d}".encode(), b"v" * vlen)


class TestPlacementConfig:
    def test_cloud_level_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(cloud_level=0)


class TestTierAssignment:
    def test_logs_and_manifest_always_local(self):
        store = build_store()
        fill(store, 2000)
        for name in store.env.list_files("db/"):
            if name.endswith(".xlog") or "MANIFEST" in name or name.endswith("CURRENT"):
                assert store.env.tier_of(name) == LOCAL, name

    def test_upper_levels_local_lower_levels_cloud(self):
        store = build_store(cloud_level=2)
        fill(store, 3000)
        version = store.db.versions.current
        for level, files in enumerate(version.files):
            for meta in files:
                name = table_file_name("db/", meta.number)
                tier = store.env.tier_of(name)
                if level < 2:
                    assert tier == LOCAL, (level, name)
                else:
                    assert tier == CLOUD, (level, name)

    def test_higher_cloud_level_keeps_more_local(self):
        shallow = build_store(cloud_level=1)
        deep = build_store(cloud_level=4)
        fill(shallow, 2000)
        fill(deep, 2000)
        assert deep.placement.local_table_bytes() > shallow.placement.local_table_bytes()
        assert deep.placement.cloud_table_bytes() < shallow.placement.cloud_table_bytes()

    def test_demotions_counted(self):
        store = build_store()
        fill(store, 3000)
        assert store.placement.demotions > 0
        summary = store.placement.tier_summary()
        assert summary["cloud_bytes"] > 0


class TestLocalBudget:
    def test_budget_demotes_overflow(self):
        budget = 8 << 10
        store = build_store(cloud_level=6, local_bytes_budget=budget)
        fill(store, 3000)
        assert store.placement.local_table_bytes() <= budget
        assert store.placement.budget_demotions > 0

    def test_no_budget_no_forced_demotion(self):
        store = build_store(cloud_level=6)  # everything fits local levels
        fill(store, 1000)
        assert store.placement.budget_demotions == 0


class TestReadsAfterDemotion:
    def test_all_keys_readable_from_both_tiers(self):
        store = build_store()
        fill(store, 3000)
        assert store.placement.cloud_table_bytes() > 0
        for i in range(0, 3000, 131):
            assert store.get(f"key{i:06d}".encode()) == b"v" * 80

    def test_cloud_reads_actually_happen(self):
        store = build_store()
        fill(store, 3000)
        store.counters.reset()
        # Keys in deep levels require cloud block fetches (cold caches for
        # most of them given the small cache budgets).
        for i in range(0, 3000, 7):
            store.get(f"key{i:06d}".encode())
        assert store.counters.get("cloud.get_ops") > 0
