"""Unit tests for counters and latency histograms."""

import pytest

from repro.metrics.counters import CounterSet
from repro.metrics.latency import LatencyHistogram


class TestCounterSet:
    def test_zero_default(self):
        assert CounterSet().get("anything") == 0

    def test_inc(self):
        c = CounterSet()
        c.inc("ops")
        c.inc("ops", 5)
        assert c.get("ops") == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().inc("x", -1)

    def test_snapshot_is_copy(self):
        c = CounterSet()
        c.inc("a")
        snap = c.snapshot()
        c.inc("a")
        assert snap == {"a": 1}

    def test_ratio(self):
        c = CounterSet()
        c.inc("hits", 3)
        c.inc("lookups", 4)
        assert c.ratio("hits", "lookups") == pytest.approx(0.75)
        assert c.ratio("hits", "nothing") == 0.0

    def test_reset(self):
        c = CounterSet()
        c.inc("a", 10)
        c.reset()
        assert c.get("a") == 0

    def test_iteration_sorted(self):
        c = CounterSet()
        c.inc("z")
        c.inc("a")
        assert [k for k, _ in c] == ["a", "z"]


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.record(0.01)
        assert h.count == 1
        assert h.mean == pytest.approx(0.01)
        assert h.percentile(50) == pytest.approx(0.01, rel=0.1)

    def test_percentiles_ordered(self):
        h = LatencyHistogram()
        for i in range(1, 1001):
            h.record(i / 1000.0)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 < p90 < p99
        assert p50 == pytest.approx(0.5, rel=0.1)
        assert p99 == pytest.approx(0.99, rel=0.1)

    def test_min_max_tracked_exactly(self):
        h = LatencyHistogram()
        h.record(0.002)
        h.record(0.5)
        assert h.min_seen == pytest.approx(0.002)
        assert h.max_seen == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.1)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.record(0.001)
        assert set(h.summary()) == {"count", "mean", "p50", "p90", "p99", "p999", "max"}

    def test_summary_p999_between_p99_and_max(self):
        h = LatencyHistogram()
        for i in range(1, 10_001):
            h.record(i / 10_000.0)
        s = h.summary()
        assert s["p99"] <= s["p999"] <= s["max"]
        assert s["p999"] == pytest.approx(0.999, rel=0.1)

    def test_p999_near_100_clamps_to_observed_max(self):
        # Percentiles in the last bucket must never exceed the true max.
        h = LatencyHistogram()
        h.record(0.01)
        h.record(0.7)
        for p in (99.0, 99.9, 99.99, 100.0):
            assert h.percentile(p) <= 0.7 + 1e-12
        assert h.percentile(99.9) == pytest.approx(0.7)

    def test_single_sample_summary_consistent(self):
        h = LatencyHistogram()
        h.record(0.03)
        s = h.summary()
        assert s["count"] == 1.0
        assert s["p50"] == pytest.approx(0.03, rel=0.1)
        assert s["p999"] == pytest.approx(0.03, rel=0.1)
        assert s["max"] == pytest.approx(0.03)
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["p999"] <= s["max"]

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for _ in range(10):
            a.record(0.001)
        for _ in range(10):
            b.record(0.1)
        a.merge(b)
        assert a.count == 20
        assert a.percentile(99) > 0.05

    def test_clamping_out_of_range(self):
        h = LatencyHistogram(min_value=1e-6, max_value=1.0)
        h.record(1e-9)
        h.record(50.0)
        assert h.count == 2
        assert h.percentile(100) <= 50.0

    def test_percentile_zero_is_observed_min(self):
        # Regression: p=0 used to return the first bucket's edge (the
        # zero threshold is satisfied before any sample is counted),
        # not the minimum actually observed.
        h = LatencyHistogram()
        h.record(0.01)
        h.record(0.5)
        assert h.percentile(0) == pytest.approx(0.01)

    def test_percentile_zero_empty(self):
        assert LatencyHistogram().percentile(0) == 0.0

    def test_percentile_hundred_is_observed_max(self):
        h = LatencyHistogram()
        h.record(0.01)
        h.record(0.5)
        assert h.percentile(100) == pytest.approx(0.5)

    def test_single_sample_all_percentiles_agree(self):
        h = LatencyHistogram()
        h.record(0.02)
        assert h.percentile(0) == pytest.approx(0.02)
        assert h.percentile(100) == pytest.approx(0.02)
        assert h.percentile(50) == pytest.approx(0.02, rel=0.1)
