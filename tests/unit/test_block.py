"""Unit tests for block building/reading (restart points, prefix compression)."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.block import Block, BlockBuilder
from repro.util.skiplist import default_compare


def build(entries, restart_interval=16):
    builder = BlockBuilder(restart_interval)
    for k, v in entries:
        builder.add(k, v)
    return Block(builder.finish(), default_compare)


class TestBlockBuilder:
    def test_empty_finish(self):
        builder = BlockBuilder()
        block = Block(builder.finish(), default_compare)
        assert list(block) == []

    def test_size_estimate_grows(self):
        builder = BlockBuilder()
        before = builder.current_size_estimate()
        builder.add(b"key", b"value")
        assert builder.current_size_estimate() > before

    def test_reset(self):
        builder = BlockBuilder()
        builder.add(b"a", b"1")
        builder.reset()
        assert builder.empty()
        builder.add(b"b", b"2")
        block = Block(builder.finish(), default_compare)
        assert list(block) == [(b"b", b"2")]

    def test_invalid_restart_interval(self):
        with pytest.raises(ValueError):
            BlockBuilder(0)

    def test_prefix_compression_saves_space(self):
        shared = [(f"commonprefix/{i:06d}".encode(), b"v") for i in range(100)]
        unique = [(f"{i:06d}/suffix-unrelated".encode(), b"v") for i in range(100)]
        b_shared = BlockBuilder(16)
        for k, v in shared:
            b_shared.add(k, v)
        b_unique = BlockBuilder(16)
        for k, v in unique:
            b_unique.add(k, v)
        assert len(b_shared.finish()) < len(b_unique.finish())


class TestBlockRead:
    def test_roundtrip_order(self):
        entries = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(200)]
        block = build(entries)
        assert list(block) == entries

    def test_roundtrip_small_restart_interval(self):
        entries = [(f"k{i:04d}".encode(), b"x" * i) for i in range(50)]
        block = build(entries, restart_interval=1)
        assert list(block) == entries

    def test_get_exact(self):
        entries = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(100)]
        block = build(entries)
        assert block.get(b"k0042") == b"v42"
        assert block.get(b"k0000") == b"v0"
        assert block.get(b"k0099") == b"v99"

    def test_get_missing(self):
        block = build([(b"b", b"1"), (b"d", b"2")])
        assert block.get(b"a") is None
        assert block.get(b"c") is None
        assert block.get(b"e") is None

    def test_seek(self):
        entries = [(f"k{i:02d}".encode(), b"v") for i in range(0, 20, 2)]
        block = build(entries, restart_interval=4)
        got = list(block.seek(b"k07"))
        assert got[0][0] == b"k08"
        assert [k for k, _ in got] == [b"k08", b"k10", b"k12", b"k14", b"k16", b"k18"]

    def test_seek_before_first(self):
        entries = [(b"m", b"1")]
        block = build(entries)
        assert list(block.seek(b"a")) == entries

    def test_seek_past_last(self):
        block = build([(b"a", b"1")])
        assert list(block.seek(b"z")) == []

    def test_empty_values_and_keys_with_nulls(self):
        entries = [(b"\x00", b""), (b"\x00\x01", b"\x00val"), (b"a\x00b", b"v")]
        block = build(entries)
        assert list(block) == entries

    def test_corrupt_restart_count(self):
        with pytest.raises(CorruptionError):
            Block(b"\x01", default_compare)

    def test_corrupt_truncated_entry(self):
        builder = BlockBuilder()
        builder.add(b"key", b"value" * 100)
        data = builder.finish()
        # Chop bytes from the middle of the entry body, keep trailer intact.
        bad = data[:10] + data[-8:]
        block = Block(bad, default_compare)
        with pytest.raises(CorruptionError):
            list(block)

    def test_duplicate_keys_preserved(self):
        # The block layer itself allows equal keys (internal keys never
        # collide, but the layer should not silently drop entries).
        block = build([(b"k", b"1"), (b"k", b"2")])
        assert list(block) == [(b"k", b"1"), (b"k", b"2")]
