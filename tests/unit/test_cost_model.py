"""Unit tests for the cost model and the error hierarchy."""

import pytest

from repro.errors import (
    ClosedError,
    CorruptionError,
    InvalidArgumentError,
    IOErrorSim,
    NotFoundError,
    RecoveryError,
    ReproError,
)
from repro.storage.cost import GB, CostModel, MonthlyBill


class TestCostModel:
    def test_storage_cost_linear(self):
        model = CostModel(local_gb_month=0.10, cloud_gb_month=0.023)
        assert model.storage_cost(GB, 0) == pytest.approx(0.10)
        assert model.storage_cost(0, GB) == pytest.approx(0.023)
        assert model.storage_cost(2 * GB, 10 * GB) == pytest.approx(0.2 + 0.23)

    def test_cloud_cheaper_per_gb(self):
        model = CostModel()
        assert model.storage_cost(0, GB) < model.storage_cost(GB, 0) / 3

    def test_request_cost(self):
        model = CostModel(cloud_put_request=5e-6, cloud_get_request=4e-7, cloud_egress_gb=0.01)
        cost = model.request_cost(put_ops=1000, get_ops=10000, egress_bytes=GB)
        assert cost == pytest.approx(1000 * 5e-6 + 10000 * 4e-7 + 0.01)

    def test_monthly_bill_extrapolates(self):
        model = CostModel()
        bill = model.monthly_bill(
            local_bytes=GB,
            cloud_bytes=0,
            put_ops=10,
            get_ops=0,
            egress_bytes=0,
            window_seconds=30 * 24 * 3600,  # exactly one month: scale = 1
        )
        assert bill.storage == pytest.approx(0.10)
        assert bill.requests == pytest.approx(10 * model.cloud_put_request)
        assert bill.total == pytest.approx(bill.storage + bill.requests)

    def test_shorter_window_scales_up(self):
        model = CostModel()
        day = model.monthly_bill(
            local_bytes=0, cloud_bytes=0, put_ops=10, get_ops=0,
            egress_bytes=0, window_seconds=24 * 3600,
        )
        month = model.monthly_bill(
            local_bytes=0, cloud_bytes=0, put_ops=10, get_ops=0,
            egress_bytes=0, window_seconds=30 * 24 * 3600,
        )
        assert day.requests == pytest.approx(month.requests * 30)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            CostModel().monthly_bill(
                local_bytes=0, cloud_bytes=0, put_ops=0, get_ops=0,
                egress_bytes=0, window_seconds=0,
            )

    def test_bill_immutable(self):
        bill = MonthlyBill(storage=1.0, requests=2.0)
        with pytest.raises(Exception):
            bill.storage = 5.0


class TestErrorHierarchy:
    def test_all_subclass_repro_error(self):
        for exc in (CorruptionError, NotFoundError, InvalidArgumentError,
                    IOErrorSim, ClosedError, RecoveryError):
            assert issubclass(exc, ReproError)

    def test_not_found_is_key_error(self):
        with pytest.raises(KeyError):
            raise NotFoundError("missing thing")

    def test_not_found_message_clean(self):
        # KeyError repr()s its args by default; ours must read as a message.
        assert str(NotFoundError("file x is gone")) == "file x is gone"

    def test_invalid_argument_is_value_error(self):
        with pytest.raises(ValueError):
            raise InvalidArgumentError("bad")

    def test_catch_all(self):
        try:
            raise CorruptionError("bit rot")
        except ReproError as exc:
            assert "bit rot" in str(exc)
