"""Unit tests for the LSM-aware persistent cache."""

import pytest

from repro.mash.pcache import PCacheConfig, PersistentCache
from repro.sim.clock import SimClock
from repro.storage.local import LocalDevice


@pytest.fixture
def device():
    return LocalDevice(SimClock())


@pytest.fixture
def cache(device):
    return PersistentCache.open(device, PCacheConfig(data_budget_bytes=1000, sync_every_n_appends=1))


class TestMetaRegion:
    def test_put_get(self, cache):
        cache.put_meta("t1.sst", "index", b"index-bytes")
        cache.put_meta("t1.sst", "filter", b"filter-bytes")
        assert cache.get_meta("t1.sst", "index") == b"index-bytes"
        assert cache.get_meta("t1.sst", "filter") == b"filter-bytes"

    def test_miss(self, cache):
        assert cache.get_meta("missing.sst", "index") is None
        assert cache.stats.meta_misses == 1

    def test_idempotent_pin(self, cache):
        cache.put_meta("t1.sst", "index", b"payload")
        before = cache.slab_bytes
        cache.put_meta("t1.sst", "index", b"payload")
        assert cache.slab_bytes == before

    def test_unknown_kind_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.put_meta("t1.sst", "data", b"x")

    def test_meta_not_evicted_by_data_pressure(self, cache):
        cache.put_meta("t1.sst", "index", b"m" * 100)
        for i in range(50):
            cache.put_data("big.sst", i * 100, bytes(100))
        assert cache.get_meta("t1.sst", "index") == b"m" * 100

    def test_meta_bytes_accounting(self, cache):
        cache.put_meta("t1.sst", "index", b"x" * 70)
        cache.put_meta("t1.sst", "filter", b"y" * 30)
        assert cache.meta_bytes == 100


class TestDataRegion:
    def test_put_get(self, cache):
        cache.put_data("t.sst", 4096, b"block-payload")
        assert cache.get_data("t.sst", 4096) == b"block-payload"
        assert cache.get_data("t.sst", 0) is None

    def test_lru_eviction_under_budget(self, cache):
        for i in range(20):
            cache.put_data("t.sst", i, bytes(100))  # budget = 1000 -> ~10 fit
        assert cache.data_bytes <= 1000
        assert cache.stats.evictions > 0
        assert cache.get_data("t.sst", 19) is not None  # newest survives
        assert cache.get_data("t.sst", 0) is None  # oldest evicted

    def test_access_refreshes_lru(self, cache):
        for i in range(10):
            cache.put_data("t.sst", i, bytes(100))
        cache.get_data("t.sst", 0)  # refresh the oldest
        cache.put_data("t.sst", 100, bytes(100))  # evicts offset 1, not 0
        assert cache.get_data("t.sst", 0) is not None
        assert cache.contains_data("t.sst", 0)
        assert not cache.contains_data("t.sst", 1)

    def test_oversized_block_not_admitted(self, cache):
        cache.put_data("t.sst", 0, bytes(5000))
        assert cache.get_data("t.sst", 0) is None

    def test_duplicate_admit_is_noop(self, cache):
        cache.put_data("t.sst", 0, b"abc")
        before = cache.slab_bytes
        cache.put_data("t.sst", 0, b"abc")
        assert cache.slab_bytes == before

    def test_contains_does_not_count_hit(self, cache):
        cache.put_data("t.sst", 0, b"abc")
        hits = cache.stats.data_hits
        assert cache.contains_data("t.sst", 0)
        assert cache.stats.data_hits == hits


class TestInvalidation:
    def test_drop_file_removes_all(self, cache):
        cache.put_meta("t.sst", "index", b"m")
        cache.put_data("t.sst", 0, b"d0")
        cache.put_data("t.sst", 10, b"d1")
        cache.put_data("other.sst", 0, b"keep")
        cache.drop_file("t.sst")
        assert cache.get_meta("t.sst", "index") is None
        assert cache.get_data("t.sst", 0) is None
        assert cache.get_data("other.sst", 0) == b"keep"

    def test_drop_missing_file_noop(self, cache):
        cache.drop_file("never-seen.sst")  # must not raise or write

    def test_drop_survives_restart(self, device, cache):
        cache.put_data("t.sst", 0, b"payload")
        cache.drop_file("t.sst")
        cache.sync()
        cache2 = PersistentCache.open(device, cache.config)
        assert cache2.get_data("t.sst", 0) is None


class TestPersistence:
    def test_contents_survive_restart(self, device):
        config = PCacheConfig(data_budget_bytes=10_000, sync_every_n_appends=1)
        cache = PersistentCache.open(device, config)
        cache.put_meta("t.sst", "index", b"index-payload")
        cache.put_data("t.sst", 64, b"data-payload")
        cache.sync()
        cache2 = PersistentCache.open(device, config)
        assert cache2.get_meta("t.sst", "index") == b"index-payload"
        assert cache2.get_data("t.sst", 64) == b"data-payload"
        assert cache2.stats.recovered_entries == 2

    def test_unsynced_admissions_lost_on_crash(self, device):
        config = PCacheConfig(data_budget_bytes=10_000, sync_every_n_appends=100)
        cache = PersistentCache.open(device, config)
        cache.put_data("t.sst", 0, b"synced")
        cache.sync()
        cache.put_data("t.sst", 1, b"volatile")
        device.crash()
        cache2 = PersistentCache.open(device, config)
        assert cache2.get_data("t.sst", 0) == b"synced"
        assert cache2.get_data("t.sst", 1) is None

    def test_torn_tail_truncated(self, device):
        config = PCacheConfig(data_budget_bytes=10_000, sync_every_n_appends=1)
        cache = PersistentCache.open(device, config)
        cache.put_data("t.sst", 0, b"good-entry")
        cache.sync()
        # Append garbage directly to the slab to simulate a torn write.
        device.append(cache._slab_name, b"\x44garbage-torn-record")
        device.sync(cache._slab_name)
        cache2 = PersistentCache.open(device, config)
        assert cache2.get_data("t.sst", 0) == b"good-entry"

    def test_budget_enforced_after_recovery(self, device):
        big = PCacheConfig(data_budget_bytes=100_000, sync_every_n_appends=1)
        cache = PersistentCache.open(device, big)
        for i in range(20):
            cache.put_data("t.sst", i, bytes(100))
        cache.sync()
        small = PCacheConfig(data_budget_bytes=500, sync_every_n_appends=1)
        cache2 = PersistentCache.open(device, small)
        assert cache2.data_bytes <= 500


class TestSlabCompaction:
    def test_garbage_triggers_compaction(self, device):
        config = PCacheConfig(
            data_budget_bytes=100 << 10, sync_every_n_appends=1, slab_garbage_ratio=0.3
        )
        cache = PersistentCache.open(device, config)
        # Create then drop lots of entries -> garbage accumulates.
        for round_ in range(10):
            name = f"t{round_}.sst"
            for i in range(20):
                cache.put_data(name, i, bytes(1000))
            cache.drop_file(name)
        assert cache.stats.slab_compactions > 0
        # Live contents unaffected.
        cache.put_data("live.sst", 0, b"still-here")
        assert cache.get_data("live.sst", 0) == b"still-here"

    def test_compaction_preserves_entries(self, device):
        config = PCacheConfig(data_budget_bytes=1 << 20, sync_every_n_appends=1)
        cache = PersistentCache.open(device, config)
        for i in range(10):
            cache.put_data("keep.sst", i, f"payload-{i}".encode())
        cache.put_meta("keep.sst", "index", b"meta")
        cache._compact_slab()
        for i in range(10):
            assert cache.get_data("keep.sst", i) == f"payload-{i}".encode()
        assert cache.get_meta("keep.sst", "index") == b"meta"

    def test_slab_shrinks_after_compaction(self, device):
        config = PCacheConfig(data_budget_bytes=1 << 20, sync_every_n_appends=1)
        cache = PersistentCache.open(device, config)
        for i in range(50):
            cache.put_data("dead.sst", i, bytes(500))
        cache.drop_file("dead.sst")
        before = cache.slab_bytes
        cache._compact_slab()
        assert cache.slab_bytes < before
