"""Unit tests for the simulated local device."""

import pytest

from repro.errors import IOErrorSim, NotFoundError
from repro.sim.clock import SimClock
from repro.sim.failure import FaultInjector
from repro.storage.local import LocalDevice


@pytest.fixture
def device():
    return LocalDevice(SimClock())


class TestBasicIO:
    def test_create_append_read(self, device):
        device.create("f")
        device.append("f", b"hello ")
        device.append("f", b"world")
        assert device.read("f") == b"hello world"

    def test_read_range(self, device):
        device.create("f")
        device.append("f", b"0123456789")
        assert device.read("f", 2, 3) == b"234"
        assert device.read("f", 8, 100) == b"89"
        assert device.read("f", 20, 5) == b""

    def test_create_duplicate_raises(self, device):
        device.create("f")
        with pytest.raises(IOErrorSim):
            device.create("f")

    def test_missing_file_raises(self, device):
        with pytest.raises(NotFoundError):
            device.read("nope")
        with pytest.raises(NotFoundError):
            device.delete("nope")
        with pytest.raises(NotFoundError):
            device.rename("nope", "x")

    def test_write_file_atomic_replace(self, device):
        device.write_file("f", b"v1")
        device.write_file("f", b"v2")
        assert device.read("f") == b"v2"

    def test_rename(self, device):
        device.write_file("a", b"data")
        device.rename("a", "b")
        assert not device.exists("a")
        assert device.read("b") == b"data"

    def test_list_files(self, device):
        for name in ["db/1.sst", "db/2.sst", "wal/1.log"]:
            device.write_file(name, b"x")
        assert device.list_files("db/") == ["db/1.sst", "db/2.sst"]
        assert len(device.list_files()) == 3

    def test_size_and_used_bytes(self, device):
        device.create("f")
        device.append("f", b"abc")
        assert device.size("f") == 3
        device.write_file("g", b"12345")
        assert device.used_bytes() == 8


class TestTimeAccounting:
    def test_read_charges_clock(self):
        clock = SimClock()
        device = LocalDevice(clock)
        device.write_file("f", b"x" * 1024)
        before = clock.now
        device.read("f")
        assert clock.now > before

    def test_append_is_free_until_sync(self):
        clock = SimClock()
        device = LocalDevice(clock)
        device.create("f")
        start = clock.now
        device.append("f", b"x" * 10000)
        assert clock.now == start
        device.sync("f")
        assert clock.now > start

    def test_larger_reads_cost_more(self):
        clock = SimClock()
        device = LocalDevice(clock)
        device.write_file("small", b"x" * 100)
        device.write_file("big", b"x" * 10_000_000)
        t0 = clock.now
        device.read("small")
        small_cost = clock.now - t0
        t1 = clock.now
        device.read("big")
        big_cost = clock.now - t1
        assert big_cost > small_cost


class TestCrashSemantics:
    def test_unsynced_tail_lost(self, device):
        device.create("f")
        device.append("f", b"durable")
        device.sync("f")
        device.append("f", b" volatile")
        device.crash()
        assert device.read("f") == b"durable"

    def test_never_synced_file_disappears(self, device):
        device.create("f")
        device.append("f", b"data")
        device.crash()
        assert not device.exists("f")

    def test_synced_data_survives(self, device):
        device.write_file("f", b"safe")
        device.crash()
        assert device.read("f") == b"safe"


class TestCapacityAndFaults:
    def test_capacity_enforced(self):
        device = LocalDevice(SimClock(), capacity_bytes=10)
        device.create("f")
        device.append("f", b"12345")
        with pytest.raises(IOErrorSim):
            device.append("f", b"678901")

    def test_fault_injection_on_read(self):
        faults = FaultInjector()
        device = LocalDevice(SimClock(), faults=faults)
        device.write_file("f", b"x")
        faults.schedule_failure()
        with pytest.raises(IOErrorSim):
            device.read("f")

    def test_counters(self):
        device = LocalDevice(SimClock())
        device.write_file("f", b"x" * 10)
        device.read("f")
        assert device.counters.get("local.read_ops") == 1
        assert device.counters.get("local.read_bytes") == 10
        assert device.counters.get("local.write_bytes") == 10
