"""Unit tests for the skiplist."""

import pytest

from repro.util.skiplist import SkipList


class TestSkipList:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert list(sl) == []
        assert sl.first() is None
        assert sl.last() is None
        assert not sl.contains(b"x")

    def test_insert_and_iterate_sorted(self):
        sl = SkipList()
        for k in [b"m", b"a", b"z", b"c"]:
            sl.insert(k)
        assert list(sl) == [b"a", b"c", b"m", b"z"]
        assert len(sl) == 4

    def test_contains(self):
        sl = SkipList()
        sl.insert(b"hello")
        assert sl.contains(b"hello")
        assert not sl.contains(b"hell")
        assert not sl.contains(b"hello!")

    def test_duplicate_raises(self):
        sl = SkipList()
        sl.insert(b"k")
        with pytest.raises(ValueError):
            sl.insert(b"k")

    def test_seek(self):
        sl = SkipList()
        for k in [b"a", b"c", b"e"]:
            sl.insert(k)
        assert list(sl.seek(b"b")) == [b"c", b"e"]
        assert list(sl.seek(b"c")) == [b"c", b"e"]
        assert list(sl.seek(b"f")) == []
        assert list(sl.seek(b"")) == [b"a", b"c", b"e"]

    def test_first_last(self):
        sl = SkipList()
        for i in range(100):
            sl.insert(f"{i:03d}".encode())
        assert sl.first() == b"000"
        assert sl.last() == b"099"

    def test_large_sorted_order(self):
        sl = SkipList(seed=7)
        import random

        rng = random.Random(42)
        keys = [rng.randbytes(rng.randint(1, 20)) for _ in range(2000)]
        unique = list(dict.fromkeys(keys))
        for k in unique:
            sl.insert(k)
        assert list(sl) == sorted(unique)

    def test_custom_comparator(self):
        # Reverse ordering comparator.
        sl = SkipList(comparator=lambda a, b: (a < b) - (a > b))
        for k in [b"a", b"b", b"c"]:
            sl.insert(k)
        assert list(sl) == [b"c", b"b", b"a"]
        assert sl.first() == b"c"
        assert sl.last() == b"a"
