"""Unit tests for SSTable builder + reader."""

import pytest

from repro.errors import CorruptionError, InvalidArgumentError
from repro.lsm.format import (
    BlockHandle,
    Footer,
    decode_handle,
    encode_handle,
    parse_file_name,
    seal_block,
    table_file_name,
    unseal_block,
)
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import TableReader
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE, make_internal_key


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


def build_table(env, entries, options=None, name="000007.sst"):
    options = options or Options()
    builder = TableBuilder(options, env.new_writable_file(name))
    for ikey, value in entries:
        builder.add(ikey, value)
    props = builder.finish()
    reader = TableReader(options, env.new_random_access_file(name))
    return props, reader


def make_entries(n, *, start=0, seq=100):
    return [
        (make_internal_key(f"key{i:06d}".encode(), seq, TYPE_VALUE), f"val{i}".encode())
        for i in range(start, start + n)
    ]


class TestFormatHelpers:
    def test_footer_roundtrip(self):
        footer = Footer(BlockHandle(10, 20), BlockHandle(40, 50))
        assert Footer.decode(footer.encode()) == footer

    def test_footer_bad_magic(self):
        data = bytearray(Footer(BlockHandle(0, 0), BlockHandle(0, 0)).encode())
        data[-1] ^= 0xFF
        with pytest.raises(CorruptionError):
            Footer.decode(bytes(data))

    def test_handle_roundtrip(self):
        h = BlockHandle(123456, 789)
        decoded, pos = decode_handle(encode_handle(h))
        assert decoded == h

    def test_seal_unseal(self):
        payload = b"some block payload"
        assert unseal_block(seal_block(payload)) == payload

    def test_unseal_detects_corruption(self):
        sealed = bytearray(seal_block(b"payload"))
        sealed[0] ^= 1
        with pytest.raises(CorruptionError):
            unseal_block(bytes(sealed))

    def test_file_names(self):
        assert table_file_name("db/", 7) == "db/000007.sst"
        assert parse_file_name("db/", "db/000007.sst") == ("table", 7)
        assert parse_file_name("db/", "db/000003.log") == ("log", 3)
        assert parse_file_name("db/", "db/MANIFEST-000002") == ("manifest", 2)
        assert parse_file_name("db/", "db/CURRENT") == ("current", 0)
        assert parse_file_name("db/", "other/000007.sst") is None
        assert parse_file_name("db/", "db/garbage") is None


class TestTableBuilder:
    def test_properties(self, env):
        entries = make_entries(100)
        props, _ = build_table(env, entries)
        assert props.num_entries == 100
        assert props.smallest_key == entries[0][0]
        assert props.largest_key == entries[-1][0]
        assert props.file_size > 0
        assert props.blocks, "expected at least one data block"
        assert props.metadata_bytes == props.index_bytes + props.filter_bytes

    def test_multiple_blocks(self, env):
        options = Options(block_size=256)
        props, _ = build_table(env, make_entries(500), options)
        assert len(props.blocks) > 1
        # Block key ranges tile the table in order without overlap.
        for i in range(1, len(props.blocks)):
            assert props.blocks[i - 1].last_key < props.blocks[i].first_key

    def test_out_of_order_rejected(self, env):
        builder = TableBuilder(Options(), env.new_writable_file("t.sst"))
        builder.add(make_internal_key(b"b", 1, TYPE_VALUE), b"v")
        with pytest.raises(InvalidArgumentError):
            builder.add(make_internal_key(b"a", 1, TYPE_VALUE), b"v")

    def test_empty_table_rejected(self, env):
        builder = TableBuilder(Options(), env.new_writable_file("t.sst"))
        with pytest.raises(InvalidArgumentError):
            builder.finish()

    def test_double_finish_rejected(self, env):
        builder = TableBuilder(Options(), env.new_writable_file("t.sst"))
        builder.add(make_internal_key(b"a", 1, TYPE_VALUE), b"v")
        builder.finish()
        with pytest.raises(InvalidArgumentError):
            builder.finish()


class TestTableReader:
    def test_full_iteration(self, env):
        entries = make_entries(300)
        _, reader = build_table(env, entries, Options(block_size=512))
        assert list(reader) == entries

    def test_get_present(self, env):
        entries = make_entries(200)
        _, reader = build_table(env, entries, Options(block_size=512))
        target = make_internal_key(b"key000123", 200, TYPE_VALUE)
        found = reader.get(target)
        assert found is not None
        ikey, value = found
        assert value == b"val123"

    def test_get_absent_via_bloom(self, env):
        entries = make_entries(100)
        _, reader = build_table(env, entries)
        assert not reader.may_contain(b"definitely-not-there-xyz")

    def test_get_respects_sequence_visibility(self, env):
        # Two versions of one key: seq 10 and seq 5.
        k = b"key"
        entries = [
            (make_internal_key(k, 10, TYPE_VALUE), b"new"),
            (make_internal_key(k, 5, TYPE_VALUE), b"old"),
        ]
        _, reader = build_table(env, entries)
        at7 = reader.get(make_internal_key(k, 7, TYPE_VALUE))
        assert at7 is not None and at7[1] == b"old"
        at10 = reader.get(make_internal_key(k, 10, TYPE_VALUE))
        assert at10 is not None and at10[1] == b"new"

    def test_tombstones_returned_not_interpreted(self, env):
        entries = [(make_internal_key(b"gone", 9, TYPE_DELETION), b"")]
        _, reader = build_table(env, entries)
        found = reader.get(make_internal_key(b"gone", 100, TYPE_VALUE))
        assert found is not None
        assert found[1] == b""

    def test_seek_iteration(self, env):
        entries = make_entries(100)
        _, reader = build_table(env, entries, Options(block_size=256))
        target = make_internal_key(b"key000050", 2**40, TYPE_VALUE)
        got = list(reader.seek(target))
        assert got == entries[50:]

    def test_no_bloom_filter_option(self, env):
        options = Options(bloom_bits_per_key=0)
        _, reader = build_table(env, make_entries(50), options)
        assert reader.may_contain(b"anything")  # no filter: conservative

    def test_truncated_file_detected(self, env):
        entries = make_entries(10)
        build_table(env, entries, name="t.sst")
        data = env.read_file("t.sst")
        env.delete_file("t.sst")
        env.write_file("t.sst", data[: len(data) // 2])
        with pytest.raises(CorruptionError):
            TableReader(Options(), env.new_random_access_file("t.sst"))

    def test_reads_are_ranged_not_whole_file(self, env):
        # A point lookup must not read the entire table.
        entries = make_entries(2000)
        options = Options(block_size=1024, block_cache_bytes=0)
        props, reader = build_table(env, entries, options)
        device = env.device
        device.counters.reset()
        reader.get(make_internal_key(b"key000700", 2**40, TYPE_VALUE))
        assert device.counters.get("local.read_bytes") < props.file_size / 4
