"""Unit tests for the sequential readahead buffer."""

import pytest

from repro.lsm.format import BLOCK_TRAILER_SIZE, BlockHandle, seal_block
from repro.mash.readahead import ReadaheadBuffer
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.storage.cloud import CloudObjectStore
from repro.storage.env import CloudEnv


def build_file(num_blocks=50, block_payload=100, rtt=10e-3):
    """A cloud object of sealed blocks; returns (env, clock, handles)."""
    clock = SimClock()
    store = CloudObjectStore(
        clock, LatencyModel(rtt, rtt, 1e6, 1e6)
    )
    data = bytearray()
    handles = []
    for i in range(num_blocks):
        payload = bytes([i % 256]) * block_payload
        sealed = seal_block(payload)
        handles.append(BlockHandle(len(data), block_payload))
        data += sealed
    store.put("table.sst", bytes(data))
    env = CloudEnv(store)
    file = env.new_random_access_file("table.sst")
    return file, clock, handles, store


class TestReadahead:
    def test_random_access_never_serves(self):
        file, _, handles, _ = build_file()
        ra = ReadaheadBuffer(file)
        assert ra.get(handles[10]) is None
        assert ra.get(handles[30]) is None
        assert ra.get(handles[5]) is None
        assert ra.stats.fetches == 0

    def test_sequential_run_triggers_fetch_and_serves(self):
        file, _, handles, _ = build_file()
        ra = ReadaheadBuffer(file)
        assert ra.get(handles[0]) is None  # first touch
        assert ra.get(handles[1]) is None  # streak=1, not yet
        payload = ra.get(handles[2])  # streak=2 -> fetch
        assert payload == bytes([2]) * 100
        assert ra.stats.fetches == 1
        # Subsequent blocks come from the buffer.
        for i in range(3, 30):
            got = ra.get(handles[i])
            assert got == bytes([i % 256]) * 100
        assert ra.stats.sequential_hits > 0

    def test_served_payload_correct_across_refetches(self):
        file, _, handles, _ = build_file(num_blocks=200)
        ra = ReadaheadBuffer(file, readahead_bytes=1 << 10)
        ra.get(handles[0])
        ra.get(handles[1])
        for i in range(2, 200):
            got = ra.get(handles[i])
            assert got == bytes([i % 256]) * 100
        assert ra.stats.fetches > 1  # small buffer -> multiple fetches

    def test_scan_saves_round_trips(self):
        file, clock, handles, store = build_file(num_blocks=100, rtt=10e-3)

        def scan_with(ra):
            start = clock.now
            for h in handles:
                if ra is None or ra.get(h) is None:
                    store.get_range("table.sst", h.offset, h.size + BLOCK_TRAILER_SIZE)
            return clock.now - start

        per_block = scan_with(None)
        with_ra = scan_with(ReadaheadBuffer(file, readahead_bytes=64 << 10))
        assert with_ra < per_block / 2

    def test_nonsequential_access_discards_buffer(self):
        file, _, handles, store = build_file()
        ra = ReadaheadBuffer(file)
        ra.get(handles[0])
        ra.get(handles[1])
        assert ra.get(handles[2]) is not None  # buffer filled
        assert ra.get(handles[40]) is None  # jump: buffer dropped
        # Even re-touching a previously buffered block must miss now.
        assert ra.get(handles[3]) is None

    def test_adaptive_growth_resets_on_invalidate(self):
        file, _, handles, _ = build_file(num_blocks=200)
        ra = ReadaheadBuffer(file, readahead_bytes=64 << 10)
        ra.get(handles[0])
        ra.get(handles[1])
        ra.get(handles[2])
        grown = ra._current_readahead
        assert grown > ReadaheadBuffer.INITIAL_READAHEAD
        ra.invalidate()
        assert ra._current_readahead == ReadaheadBuffer.INITIAL_READAHEAD

    def test_invalid_config_rejected(self):
        file, _, _, _ = build_file(num_blocks=2)
        with pytest.raises(ValueError):
            ReadaheadBuffer(file, readahead_bytes=0)


class TestReverseReadahead:
    def test_descending_run_triggers_fetch_and_serves(self):
        file, _, handles, _ = build_file(num_blocks=60)
        ra = ReadaheadBuffer(file, readahead_bytes=64 << 10)
        assert ra.get(handles[59]) is None  # first touch
        assert ra.get(handles[58]) is None  # streak=1, not yet
        payload = ra.get(handles[57])  # streak=2 -> reverse fetch
        assert payload == bytes([57]) * 100
        assert ra.stats.fetches == 1
        for i in range(56, 20, -1):
            got = ra.get(handles[i])
            assert got == bytes([i % 256]) * 100
        assert ra.stats.sequential_hits > 0

    def test_descending_saves_round_trips(self):
        file, clock, handles, store = build_file(num_blocks=100, rtt=10e-3)

        def scan_with(ra):
            start = clock.now
            for h in reversed(handles):
                if ra is None or ra.get(h) is None:
                    store.get_range("table.sst", h.offset, h.size + BLOCK_TRAILER_SIZE)
            return clock.now - start

        per_block = scan_with(None)
        with_ra = scan_with(ReadaheadBuffer(file, readahead_bytes=64 << 10))
        assert with_ra < per_block / 2

    def test_jump_discards_descending_buffer(self):
        file, _, handles, _ = build_file()
        ra = ReadaheadBuffer(file)
        ra.get(handles[20])
        ra.get(handles[19])
        assert ra.get(handles[18]) is not None  # descending buffer filled
        assert ra.get(handles[40]) is None  # jump: buffer dropped
        assert ra.get(handles[17]) is None  # and streak restarted

    def test_eager_mode_refetches_on_backward_step(self):
        file, _, handles, _ = build_file()
        ra = ReadaheadBuffer(file, eager=True)
        assert ra.get(handles[10]) is not None  # eager: first access fetches
        fetches = ra.stats.fetches
        # Eager (compaction) mode has no reverse streak: a backward step
        # drops the buffer and re-fetches forward from the new position.
        assert ra.get(handles[9]) is not None
        assert ra.stats.fetches == fetches + 1


class TestPrime:
    def test_prime_serves_first_block_without_streak(self):
        file, _, handles, _ = build_file()
        ra = ReadaheadBuffer(file, readahead_bytes=64 << 10)
        ra.prime(handles[0], 4 << 10)
        assert ra.stats.fetches == 1
        # The primed range serves immediately — no two-touch warmup.
        for i in range(0, 30):
            got = ra.get(handles[i])
            assert got == bytes([i % 256]) * 100, i
        assert ra.stats.sequential_hits > 0

    def test_prime_covers_at_least_one_block(self):
        file, _, handles, _ = build_file(block_payload=3000)
        ra = ReadaheadBuffer(file, readahead_bytes=64 << 10)
        ra.prime(handles[5], 16)  # smaller than the block: rounded up
        assert ra.get(handles[5]) == bytes([5]) * 3000

    def test_initial_window_carries_growth(self):
        file, _, _, _ = build_file(num_blocks=2)
        ra = ReadaheadBuffer(file, readahead_bytes=64 << 10, initial_window=32 << 10)
        assert ra.current_window == 32 << 10
        ra.invalidate()  # resets to the carried window, not 4 KiB
        assert ra.current_window == 32 << 10

    def test_initial_window_clamped_to_max(self):
        file, _, _, _ = build_file(num_blocks=2)
        ra = ReadaheadBuffer(file, readahead_bytes=8 << 10, initial_window=1 << 20)
        assert ra.current_window == 8 << 10
