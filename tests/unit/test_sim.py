"""Unit tests for the simulation substrate: clock, latency, faults."""

import pytest

from repro.errors import IOErrorSim
from repro.sim.clock import SimClock, StopwatchRegion
from repro.sim.failure import FaultInjector, RetryPolicy
from repro.sim.latency import LatencyModel, cloud_object_storage, nvme_ssd


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_fork_children_start_at_parent(self):
        clock = SimClock()
        clock.advance(3.0)
        children = clock.fork(4)
        assert all(c.now == pytest.approx(3.0) for c in children)

    def test_join_takes_max(self):
        clock = SimClock()
        kids = clock.fork(3)
        kids[0].advance(1.0)
        kids[1].advance(5.0)
        kids[2].advance(2.0)
        clock.join(kids)
        assert clock.now == pytest.approx(5.0)

    def test_join_empty_noop(self):
        clock = SimClock(now=2.0)
        clock.join([])
        assert clock.now == pytest.approx(2.0)

    def test_join_rewind_rejected(self):
        clock = SimClock()
        kids = clock.fork(1)
        clock.advance(10.0)
        with pytest.raises(ValueError):
            clock.join(kids)

    def test_fork_zero_rejected(self):
        with pytest.raises(ValueError):
            SimClock().fork(0)

    def test_stopwatch(self):
        clock = SimClock()
        with StopwatchRegion(clock) as sw:
            clock.advance(0.25)
        assert sw.elapsed == pytest.approx(0.25)


class TestLatencyModel:
    def test_read_cost_components(self):
        model = LatencyModel(1e-3, 2e-3, 1e6, 2e6)
        assert model.read_cost(0) == pytest.approx(1e-3)
        assert model.read_cost(1_000_000) == pytest.approx(1e-3 + 1.0)
        assert model.write_cost(2_000_000) == pytest.approx(2e-3 + 1.0)

    def test_cloud_much_slower_than_ssd_for_small_reads(self):
        ssd, cloud = nvme_ssd(), cloud_object_storage()
        assert cloud.read_cost(4096) > 50 * ssd.read_cost(4096)

    def test_cloud_rtt_configurable(self):
        assert cloud_object_storage(rtt=0.1).read_cost(0) == pytest.approx(0.1)


class TestFaultInjector:
    def test_no_faults_by_default(self):
        inj = FaultInjector()
        for _ in range(100):
            inj.check("op")
        assert inj.injected == 0

    def test_scheduled_failure_fires_once(self):
        inj = FaultInjector()
        inj.schedule_failure("boom")
        with pytest.raises(IOErrorSim, match="boom"):
            inj.check("op")
        inj.check("op")  # next call passes

    def test_error_rate_deterministic_with_seed(self):
        def run():
            inj = FaultInjector(error_rate=0.3, seed=99)
            outcomes = []
            for _ in range(50):
                try:
                    inj.check("op")
                    outcomes.append(True)
                except IOErrorSim:
                    outcomes.append(False)
            return outcomes

        assert run() == run()
        assert not all(run())

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(error_rate=1.5)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(initial_backoff=0.01, multiplier=2.0, max_backoff=0.05)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(10) == pytest.approx(0.05)
