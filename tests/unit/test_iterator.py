"""Unit tests for the merge/visibility iterator machinery."""

from repro.lsm.iterator import clamp_to_range, merge_internal, visible_user_entries
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE, make_internal_key


def ik(user_key: bytes, seq: int, vtype: int = TYPE_VALUE) -> bytes:
    return make_internal_key(user_key, seq, vtype)


class TestMergeInternal:
    def test_empty_sources(self):
        assert list(merge_internal([])) == []
        assert list(merge_internal([iter([]), iter([])])) == []

    def test_single_source_passthrough(self):
        entries = [(ik(b"a", 2), b"1"), (ik(b"b", 1), b"2")]
        assert list(merge_internal([iter(entries)])) == entries

    def test_interleaved_merge(self):
        s1 = [(ik(b"a", 1), b"a1"), (ik(b"c", 1), b"c1")]
        s2 = [(ik(b"b", 1), b"b1"), (ik(b"d", 1), b"d1")]
        merged = list(merge_internal([iter(s1), iter(s2)]))
        assert [e[1] for e in merged] == [b"a1", b"b1", b"c1", b"d1"]

    def test_same_user_key_newest_first(self):
        s1 = [(ik(b"k", 5), b"old")]
        s2 = [(ik(b"k", 9), b"new")]
        merged = list(merge_internal([iter(s1), iter(s2)]))
        assert [e[1] for e in merged] == [b"new", b"old"]

    def test_many_sources(self):
        sources = [iter([(ik(bytes([97 + i]), 1), bytes([i]))]) for i in range(20)]
        merged = list(merge_internal(sources))
        assert len(merged) == 20
        keys = [e[0] for e in merged]
        assert keys == sorted(keys)


class TestVisibility:
    def test_newest_wins(self):
        merged = iter([(ik(b"k", 9), b"new"), (ik(b"k", 5), b"old")])
        assert list(visible_user_entries(merged)) == [(b"k", b"new")]

    def test_tombstone_hides(self):
        merged = iter([(ik(b"k", 9, TYPE_DELETION), b""), (ik(b"k", 5), b"old")])
        assert list(visible_user_entries(merged)) == []

    def test_snapshot_skips_future(self):
        merged = iter([(ik(b"k", 9), b"future"), (ik(b"k", 5), b"past")])
        assert list(visible_user_entries(merged, sequence=6)) == [(b"k", b"past")]

    def test_snapshot_before_any_entry(self):
        merged = iter([(ik(b"k", 9), b"v")])
        assert list(visible_user_entries(merged, sequence=3)) == []

    def test_tombstone_then_older_put_at_snapshot(self):
        # Delete at seq 9, put at seq 5; snapshot at 7 sees the put.
        merged = iter([(ik(b"k", 9, TYPE_DELETION), b""), (ik(b"k", 5), b"v")])
        assert list(visible_user_entries(merged, sequence=7)) == [(b"k", b"v")]

    def test_multiple_keys(self):
        merged = iter(
            [
                (ik(b"a", 3), b"a3"),
                (ik(b"a", 1), b"a1"),
                (ik(b"b", 2, TYPE_DELETION), b""),
                (ik(b"b", 1), b"b1"),
                (ik(b"c", 1), b"c1"),
            ]
        )
        assert list(visible_user_entries(merged)) == [(b"a", b"a3"), (b"c", b"c1")]


class TestClamp:
    def entries(self):
        return iter([(b"a", b"1"), (b"c", b"2"), (b"e", b"3"), (b"g", b"4")])

    def test_no_bounds(self):
        assert len(list(clamp_to_range(self.entries()))) == 4

    def test_begin_inclusive(self):
        got = list(clamp_to_range(self.entries(), begin=b"c"))
        assert [k for k, _ in got] == [b"c", b"e", b"g"]

    def test_end_exclusive(self):
        got = list(clamp_to_range(self.entries(), end=b"e"))
        assert [k for k, _ in got] == [b"a", b"c"]

    def test_both_bounds(self):
        got = list(clamp_to_range(self.entries(), begin=b"b", end=b"g"))
        assert [k for k, _ in got] == [b"c", b"e"]

    def test_early_termination(self):
        # clamp must stop consuming once past `end`.
        consumed = []

        def source():
            for k in [b"a", b"b", b"c", b"d"]:
                consumed.append(k)
                yield k, b"v"

        list(clamp_to_range(source(), end=b"b"))
        assert b"d" not in consumed
