"""Unit tests for internal key encoding and comparison."""

import pytest

from repro.errors import CorruptionError
from repro.util.encoding import (
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    InternalKeyOrder,
    compare_internal,
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    extract_user_key,
    make_internal_key,
    parse_internal_key,
)


class TestFixed:
    def test_fixed32_roundtrip(self):
        for v in [0, 1, 0xFFFFFFFF, 123456]:
            assert decode_fixed32(encode_fixed32(v)) == v

    def test_fixed64_roundtrip(self):
        for v in [0, 1, 2**63, 2**64 - 1]:
            assert decode_fixed64(encode_fixed64(v)) == v

    def test_fixed32_little_endian(self):
        assert encode_fixed32(1) == b"\x01\x00\x00\x00"


class TestInternalKey:
    def test_roundtrip(self):
        ikey = make_internal_key(b"user", 42, TYPE_VALUE)
        parsed = parse_internal_key(ikey)
        assert parsed.user_key == b"user"
        assert parsed.sequence == 42
        assert parsed.value_type == TYPE_VALUE

    def test_empty_user_key(self):
        ikey = make_internal_key(b"", 7, TYPE_DELETION)
        parsed = parse_internal_key(ikey)
        assert parsed.user_key == b""
        assert parsed.sequence == 7
        assert parsed.value_type == TYPE_DELETION

    def test_max_sequence(self):
        ikey = make_internal_key(b"k", MAX_SEQUENCE, TYPE_VALUE)
        assert parse_internal_key(ikey).sequence == MAX_SEQUENCE

    def test_sequence_out_of_range(self):
        with pytest.raises(ValueError):
            make_internal_key(b"k", MAX_SEQUENCE + 1, TYPE_VALUE)

    def test_too_short_raises(self):
        with pytest.raises(CorruptionError):
            parse_internal_key(b"short")

    def test_extract_user_key(self):
        assert extract_user_key(make_internal_key(b"abc", 1, TYPE_VALUE)) == b"abc"


class TestInternalOrder:
    def test_user_key_ascending(self):
        a = make_internal_key(b"a", 5, TYPE_VALUE)
        b = make_internal_key(b"b", 5, TYPE_VALUE)
        assert compare_internal(a, b) < 0
        assert compare_internal(b, a) > 0

    def test_sequence_descending_within_user_key(self):
        newer = make_internal_key(b"k", 10, TYPE_VALUE)
        older = make_internal_key(b"k", 5, TYPE_VALUE)
        assert compare_internal(newer, older) < 0  # newer sorts first

    def test_type_breaks_ties(self):
        put = make_internal_key(b"k", 5, TYPE_VALUE)
        delete = make_internal_key(b"k", 5, TYPE_DELETION)
        assert compare_internal(put, delete) < 0  # higher type first

    def test_equal(self):
        a = make_internal_key(b"k", 5, TYPE_VALUE)
        assert compare_internal(a, bytes(a)) == 0

    def test_prefix_user_keys(self):
        # b"a" < b"ab" as user keys regardless of trailer bytes
        short = make_internal_key(b"a", 1, TYPE_VALUE)
        long = make_internal_key(b"ab", 9999, TYPE_VALUE)
        assert compare_internal(short, long) < 0

    def test_sorted_adaptor(self):
        keys = [
            make_internal_key(b"b", 1, TYPE_VALUE),
            make_internal_key(b"a", 2, TYPE_VALUE),
            make_internal_key(b"a", 9, TYPE_VALUE),
        ]
        ordered = sorted(keys, key=InternalKeyOrder)
        assert ordered == [keys[2], keys[1], keys[0]]
