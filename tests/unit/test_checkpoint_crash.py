"""Crash/restart coverage for checkpoint creation and restore.

The manifest object is a checkpoint's commit point: a crash anywhere
before it lands must leave the checkpoint invisible (not listed, not
restorable), the live store untouched, and the partial objects reclaimable
by ``delete_checkpoint``.
"""

import pytest

from repro.errors import NotFoundError
from repro.mash.checkpoint import (
    CHECKPOINT_PREFIX,
    create_checkpoint,
    delete_checkpoint,
    list_checkpoints,
    restore_checkpoint,
)
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.failure import CrashPointFired, crash_points


@pytest.fixture(autouse=True)
def _clean_registry():
    crash_points.reset()
    yield
    crash_points.reset()


@pytest.fixture
def store():
    s = RocksMashStore.create(StoreConfig().small())
    for i in range(800):
        s.put(f"key{i:06d}".encode(), f"value-{i}".encode())
    return s


def _crash_checkpoint(store, site, name="snap"):
    crash_points.arm(site)
    try:
        with pytest.raises(CrashPointFired):
            create_checkpoint(store, name)
    finally:
        crash_points.disarm()


@pytest.mark.parametrize("site", ["checkpoint.mid_copy", "checkpoint.before_manifest"])
class TestInterruptedCreate:
    def test_partial_checkpoint_not_listed(self, store, site):
        _crash_checkpoint(store, site)
        assert list_checkpoints(store.cloud_store) == []

    def test_partial_checkpoint_not_restorable(self, store, site):
        _crash_checkpoint(store, site)
        with pytest.raises(NotFoundError):
            restore_checkpoint(store.cloud_store, "snap", store.config)

    def test_partial_objects_reclaimable(self, store, site):
        _crash_checkpoint(store, site)
        leftovers = store.cloud_store.list_keys(CHECKPOINT_PREFIX)
        if site == "checkpoint.mid_copy":
            assert len(leftovers) >= 1  # at least one copied table
        deleted = delete_checkpoint(store.cloud_store, "snap")
        assert deleted == len(leftovers)
        assert store.cloud_store.list_keys(CHECKPOINT_PREFIX) == []

    def test_live_store_survives_crash_and_reopen(self, store, site):
        _crash_checkpoint(store, site)
        # The interrupted checkpoint flushed the memtable; the store itself
        # must recover cleanly from the simulated process death.
        recovered = store.reopen(crash=True)
        assert recovered.get(b"key000000") == b"value-0"
        assert recovered.get(b"key000799") == b"value-799"
        recovered.put(b"post", b"crash")
        assert recovered.get(b"post") == b"crash"

    def test_retry_after_crash_succeeds(self, store, site):
        _crash_checkpoint(store, site)
        recovered = store.reopen(crash=True)
        delete_checkpoint(recovered.cloud_store, "snap")
        info = create_checkpoint(recovered, "snap")
        assert info.num_tables > 0
        assert list_checkpoints(recovered.cloud_store) == ["snap"]
        restored = restore_checkpoint(recovered.cloud_store, "snap", recovered.config)
        assert restored.get(b"key000123") == b"value-123"


class TestRestartIndependence:
    def test_checkpoint_survives_source_crash(self, store):
        create_checkpoint(store, "before")
        store.put(b"newer", b"write")
        recovered = store.reopen(crash=True)
        # The checkpoint is frozen at creation time...
        restored = restore_checkpoint(recovered.cloud_store, "before", recovered.config)
        assert restored.get(b"newer") is None
        assert restored.get(b"key000001") == b"value-1"
        # ...while the recovered source kept the later write.
        assert recovered.get(b"newer") == b"write"

    def test_restore_then_crash_recovers_independently(self, store):
        create_checkpoint(store, "base")
        restored = restore_checkpoint(store.cloud_store, "base", store.config)
        restored.put(b"branch", b"a")
        recovered = restored.reopen(crash=True)
        assert recovered.get(b"branch") == b"a"
        assert recovered.get(b"key000500") == b"value-500"
