"""Unit tests for versions, edits, and the manifest."""

import pytest

from repro.errors import CorruptionError, RecoveryError
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version, VersionEdit, VersionSet
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_VALUE, make_internal_key


def fmd(number, lo, hi, size=1000, seq=10):
    return FileMetaData(
        number=number,
        file_size=size,
        smallest=make_internal_key(lo, seq, TYPE_VALUE),
        largest=make_internal_key(hi, seq, TYPE_VALUE),
    )


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


class TestVersionEdit:
    def test_roundtrip(self):
        edit = VersionEdit(log_number=3, next_file_number=17, last_sequence=999)
        edit.add_file(1, fmd(5, b"a", b"m"))
        edit.add_file(2, fmd(6, b"n", b"z", size=12345))
        edit.delete_file(0, 2)
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.log_number == 3
        assert decoded.next_file_number == 17
        assert decoded.last_sequence == 999
        assert decoded.deleted_files == {(0, 2)}
        assert decoded.new_files == edit.new_files

    def test_empty_edit(self):
        decoded = VersionEdit.decode(VersionEdit().encode())
        assert decoded.log_number is None
        assert not decoded.new_files

    def test_unknown_tag_raises(self):
        with pytest.raises(CorruptionError):
            VersionEdit.decode(b"\x63\x01")


class TestVersion:
    def test_apply_add_and_delete(self):
        v0 = Version(7)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"c"))
        edit.add_file(1, fmd(2, b"a", b"m"))
        v1 = edit_apply = v0.apply(edit)
        assert v1.num_files(0) == 1
        assert v1.num_files(1) == 1
        edit2 = VersionEdit()
        edit2.delete_file(0, 1)
        v2 = v1.apply(edit2)
        assert v2.num_files(0) == 0
        assert v1.num_files(0) == 1  # immutability

    def test_overlap_invariant_enforced(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"m"))
        edit.add_file(1, fmd(2, b"k", b"z"))  # overlaps in L1
        with pytest.raises(CorruptionError):
            v.apply(edit)

    def test_l0_overlap_allowed(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"m"))
        edit.add_file(0, fmd(2, b"k", b"z"))
        v1 = v.apply(edit)
        assert v1.num_files(0) == 2

    def test_files_for_user_key_l0_newest_first(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"z"))
        edit.add_file(0, fmd(5, b"a", b"z"))
        edit.add_file(1, fmd(3, b"a", b"z"))
        v1 = v.apply(edit)
        hits = list(v1.files_for_user_key(b"m"))
        assert [(lvl, m.number) for lvl, m in hits] == [(0, 5), (0, 1), (1, 3)]

    def test_files_for_user_key_binary_search(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"f"))
        edit.add_file(1, fmd(2, b"g", b"p"))
        edit.add_file(1, fmd(3, b"q", b"z"))
        v1 = v.apply(edit)
        assert [m.number for _, m in v1.files_for_user_key(b"h")] == [2]
        assert list(v1.files_for_user_key(b"fz")) == []  # gap between files

    def test_overlapping_files_range(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"f"))
        edit.add_file(1, fmd(2, b"g", b"p"))
        edit.add_file(1, fmd(3, b"q", b"z"))
        v1 = v.apply(edit)
        assert [m.number for m in v1.overlapping_files(1, b"h", b"r")] == [2, 3]
        assert [m.number for m in v1.overlapping_files(1, None, None)] == [1, 2, 3]

    def test_l0_overlap_expansion(self):
        # Picking file 1 must drag in transitively overlapping L0 files.
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(0, fmd(1, b"a", b"d"))
        edit.add_file(0, fmd(2, b"c", b"g"))
        edit.add_file(0, fmd(3, b"f", b"k"))
        edit.add_file(0, fmd(4, b"x", b"z"))
        v1 = v.apply(edit)
        got = {m.number for m in v1.overlapping_files(0, b"a", b"b")}
        assert got == {1, 2, 3}

    def test_is_base_level_for_key(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"f"))
        edit.add_file(3, fmd(2, b"m", b"p"))
        v1 = v.apply(edit)
        assert v1.is_base_level_for_key(1, b"b")  # nothing below L1 holds "b"
        assert not v1.is_base_level_for_key(1, b"n")  # L3 file may hold "n"
        assert v1.is_base_level_for_key(3, b"n")

    def test_bytes_accounting(self):
        v = Version(7)
        edit = VersionEdit()
        edit.add_file(1, fmd(1, b"a", b"f", size=100))
        edit.add_file(2, fmd(2, b"a", b"f", size=200))
        v1 = v.apply(edit)
        assert v1.level_bytes(1) == 100
        assert v1.total_bytes() == 300
        assert v1.live_file_numbers() == {1, 2}
        assert v1.deepest_nonempty_level() == 2


class TestVersionSet:
    def test_create_and_recover(self, env):
        options = Options()
        vs = VersionSet(env, "db/", options)
        vs.create()
        edit = VersionEdit(last_sequence=50)
        edit.add_file(0, fmd(3, b"a", b"z"))
        vs.log_and_apply(edit)
        vs.close()

        vs2 = VersionSet(env, "db/", options)
        vs2.recover()
        assert vs2.last_sequence == 50
        assert vs2.current.num_files(0) == 1
        assert vs2.next_file_number >= 4

    def test_recover_missing_current(self, env):
        vs = VersionSet(env, "nodb/", Options())
        with pytest.raises(RecoveryError):
            vs.recover()

    def test_file_numbers_monotonic(self, env):
        vs = VersionSet(env, "db/", Options())
        vs.create()
        numbers = [vs.new_file_number() for _ in range(5)]
        assert numbers == sorted(set(numbers))

    def test_recover_then_continue_appending(self, env):
        options = Options()
        vs = VersionSet(env, "db/", options)
        vs.create()
        edit = VersionEdit()
        edit.add_file(1, fmd(3, b"a", b"m"))
        vs.log_and_apply(edit)
        vs.close()

        vs2 = VersionSet(env, "db/", options)
        vs2.recover()
        edit2 = VersionEdit()
        edit2.add_file(1, fmd(4, b"n", b"z"))
        vs2.log_and_apply(edit2)
        vs2.close()

        vs3 = VersionSet(env, "db/", options)
        vs3.recover()
        assert vs3.current.num_files(1) == 2

    def test_manifest_bytes_grow(self, env):
        vs = VersionSet(env, "db/", Options())
        vs.create()
        before = vs.manifest_bytes()
        edit = VersionEdit()
        edit.add_file(0, fmd(3, b"a", b"z"))
        vs.log_and_apply(edit)
        assert vs.manifest_bytes() > before
