"""Unit tests for the crash-point registry, torn-tail crashes, and the
recovery oracle's shadow-model semantics."""

import random

import pytest

from repro.sim.clock import SimClock
from repro.sim.failure import (
    CRASH_SITES,
    CrashPointFired,
    CrashPointRegistry,
    RecoveryOracle,
    armed,
    crash_points,
)
from repro.storage.local import LocalDevice


@pytest.fixture(autouse=True)
def _clean_registry():
    crash_points.reset()
    yield
    crash_points.reset()


class TestCrashPointRegistry:
    def test_disarmed_reach_is_a_noop(self):
        reg = CrashPointRegistry()
        reg.reach("flush.before_manifest")
        assert reg.hits["flush.before_manifest"] == 1
        assert reg.fired is None

    def test_armed_reach_fires_and_disarms(self):
        reg = CrashPointRegistry()
        reg.arm("flush.before_manifest")
        with pytest.raises(CrashPointFired) as exc:
            reg.reach("flush.before_manifest")
        assert exc.value.site == "flush.before_manifest"
        assert reg.fired == "flush.before_manifest"
        assert reg.armed is None
        reg.reach("flush.before_manifest")  # recovery re-entry survives

    def test_skip_counts_down(self):
        reg = CrashPointRegistry()
        reg.arm("xwal.partial_sync", skip=2)
        reg.reach("xwal.partial_sync")
        reg.reach("xwal.partial_sync")
        with pytest.raises(CrashPointFired):
            reg.reach("xwal.partial_sync")

    def test_other_sites_do_not_fire(self):
        reg = CrashPointRegistry()
        reg.arm("flush.before_manifest")
        reg.reach("compaction.mid_output")
        assert reg.fired is None

    def test_unknown_site_rejected(self):
        reg = CrashPointRegistry()
        with pytest.raises(ValueError):
            reg.arm("no.such.site")
        with pytest.raises(ValueError):
            reg.reach("no.such.site")

    def test_register_extends_catalogue(self):
        reg = CrashPointRegistry()
        reg.register("custom.site", "docs")
        assert "custom.site" in reg.sites()
        reg.arm("custom.site")
        with pytest.raises(CrashPointFired):
            reg.reach("custom.site")

    def test_at_least_eight_distinct_sites_registered(self):
        assert len(CRASH_SITES) >= 8
        assert crash_points.sites() == sorted(CRASH_SITES)

    def test_armed_context_manager_disarms_on_exit(self):
        with armed("flush.before_manifest"):
            assert crash_points.armed == "flush.before_manifest"
        assert crash_points.armed is None
        with pytest.raises(CrashPointFired):
            with armed("flush.before_manifest"):
                crash_points.reach("flush.before_manifest")
        assert crash_points.armed is None


class TestTornTailCrash:
    def test_plain_crash_drops_whole_tail(self):
        device = LocalDevice(SimClock())
        device.create("f")
        device.append("f", b"synced")
        device.sync("f")
        device.append("f", b"pending")
        device.crash()
        assert device.read("f") == b"synced"

    def test_torn_tail_keeps_byte_prefix(self):
        device = LocalDevice(SimClock())
        device.create("f")
        device.append("f", b"synced")
        device.sync("f")
        device.append("f", b"0123456789")
        device.crash(torn_tail=True, rng=random.Random(3))
        data = device.read("f")
        assert data.startswith(b"synced")
        kept = data[len(b"synced") :]
        assert b"0123456789".startswith(kept)

    def test_torn_tail_is_deterministic(self):
        def run(seed):
            device = LocalDevice(SimClock())
            device.create("f")
            device.append("f", b"x" * 100)
            device.sync("f")
            device.append("f", b"y" * 100)
            device.crash(torn_tail=True, rng=random.Random(seed))
            return device.read("f")

        assert run(7) == run(7)

    def test_never_synced_file_with_zero_prefix_vanishes(self):
        # rng seeded so the single file keeps 0 pending bytes -> never
        # synced -> deleted, exactly like the non-torn crash.
        for seed in range(50):
            device = LocalDevice(SimClock())
            device.create("f")
            device.append("f", b"ab")
            device.crash(torn_tail=True, rng=random.Random(seed))
            if device.exists("f"):
                assert device.read("f") in (b"a", b"ab")
                break
        else:
            pytest.fail("no seed kept a prefix of the unsynced file")


class TestRecoveryOracle:
    class _FakeStore:
        def __init__(self, contents):
            self.contents = dict(contents)

        def put(self, key, value):
            self.contents[key] = value

        def delete(self, key):
            self.contents.pop(key, None)

        def get(self, key):
            return self.contents.get(key)

        def scan(self):
            return sorted(self.contents.items())

    def test_acked_writes_must_survive(self):
        oracle = RecoveryOracle()
        store = self._FakeStore({})
        oracle.put(store, b"k", b"v")
        assert oracle.verify(store) == []
        store.contents.pop(b"k")  # simulate lost acked write
        problems = oracle.verify(store)
        assert problems and "k" in problems[0]

    def test_in_flight_value_may_or_may_not_persist(self):
        oracle = RecoveryOracle()
        oracle.put(self._FakeStore({}), b"k", b"old")
        oracle.begin({b"k": b"new"})
        oracle.crash()
        assert oracle.verify(self._FakeStore({b"k": b"old"})) == []
        assert oracle.verify(self._FakeStore({b"k": b"new"})) == []
        assert oracle.verify(self._FakeStore({b"k": b"other"})) != []

    def test_deleted_keys_must_not_resurrect(self):
        oracle = RecoveryOracle()
        store = self._FakeStore({})
        oracle.put(store, b"k", b"v")
        oracle.delete(store, b"k")
        assert oracle.verify(store) == []
        problems = oracle.verify(self._FakeStore({b"k": b"v"}))
        assert problems

    def test_fabricated_keys_detected(self):
        oracle = RecoveryOracle()
        store = self._FakeStore({})
        oracle.put(store, b"k", b"v")
        problems = oracle.verify(self._FakeStore({b"k": b"v", b"ghost": b"x"}))
        assert any(b"ghost" in p.encode() or "ghost" in p for p in problems)

    def test_interrupted_delete_allows_both_outcomes(self):
        oracle = RecoveryOracle()
        store = self._FakeStore({})
        oracle.put(store, b"k", b"v")
        oracle.begin({b"k": None})
        oracle.crash()
        assert oracle.verify(self._FakeStore({b"k": b"v"})) == []
        assert oracle.verify(self._FakeStore({})) == []
