"""Unit tests for partitioned (per-block) bloom filters."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.format import decode_partitioned_filter, encode_partitioned_filter
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import TableReader
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_VALUE, make_internal_key


def build(partitioning, n=400, block_size=512):
    env = LocalEnv(LocalDevice(SimClock()))
    options = Options(
        block_size=block_size,
        filter_partitioning=partitioning,
        block_cache_bytes=0,
    )
    builder = TableBuilder(options, env.new_writable_file("t.sst"))
    for i in range(n):
        builder.add(
            make_internal_key(f"key{i:06d}".encode(), 7, TYPE_VALUE), b"v" * 50
        )
    props = builder.finish()
    reader = TableReader(options, env.new_random_access_file("t.sst"))
    return env, props, reader


class TestEncoding:
    def test_roundtrip(self):
        parts = [b"filter-a", b"", b"filter-c" * 10]
        assert decode_partitioned_filter(encode_partitioned_filter(parts)) == parts

    def test_empty_list(self):
        assert decode_partitioned_filter(encode_partitioned_filter([])) == []

    def test_corrupt_offsets_detected(self):
        payload = bytearray(encode_partitioned_filter([b"abc", b"def"]))
        payload[-5] = 0xFF  # garble an offset
        with pytest.raises(CorruptionError):
            decode_partitioned_filter(bytes(payload))


class TestPartitionedTables:
    def test_lookups_correct(self):
        _, props, reader = build("block")
        assert len(props.blocks) > 1
        for i in range(0, 400, 13):
            found = reader.get(make_internal_key(f"key{i:06d}".encode(), 100, TYPE_VALUE))
            assert found is not None and found[1] == b"v" * 50

    def test_absent_keys_rejected_without_data_read(self):
        env, _, reader = build("block")
        device = env.device
        device.counters.reset()
        misses = 0
        for i in range(300):
            target = make_internal_key(f"zzz-absent-{i}".encode(), 100, TYPE_VALUE)
            if reader.get(target) is None:
                misses += 1
        assert misses == 300
        # Partition probes answer from memory: no data-block reads at all.
        assert device.counters.get("local.read_ops") == 0

    def test_absent_keys_inside_key_range_rejected(self):
        from repro.util.encoding import parse_internal_key

        env, _, reader = build("block")
        device = env.device
        device.counters.reset()
        for i in range(400):
            # Keys that fall between existing keys (same format, odd suffix).
            user_key = f"key{i:06d}x".encode()
            target = make_internal_key(user_key, 100, TYPE_VALUE)
            found = reader.get(target)
            if found is not None:
                # A bloom false positive read the block and returned the
                # *neighbouring* entry; the caller detects the mismatch.
                assert parse_internal_key(found[0]).user_key != user_key
        # Bloom rejects most probes from memory; only false positives
        # (~1% at 10 bits/key) cost a data-block read.
        assert device.counters.get("local.read_ops") < 40

    def test_iteration_unaffected(self):
        _, _, reader = build("block")
        entries = list(reader)
        assert len(entries) == 400
        keys = [k for k, _ in entries]
        assert keys == sorted(keys, key=lambda ik: ik[:-8])

    def test_whole_table_mode_still_works(self):
        _, _, reader = build("table")
        assert reader._partitions is None
        assert not reader.may_contain(b"definitely-absent-qqq")
        found = reader.get(make_internal_key(b"key000100", 100, TYPE_VALUE))
        assert found is not None

    def test_option_validated(self):
        with pytest.raises(ValueError):
            Options(filter_partitioning="row")

    def test_db_end_to_end(self):
        from repro.lsm.db import DB

        env = LocalEnv(LocalDevice(SimClock()))
        options = Options(
            write_buffer_size=4 << 10,
            block_size=512,
            max_bytes_for_level_base=16 << 10,
            target_file_size_base=4 << 10,
            filter_partitioning="block",
            block_cache_bytes=0,
        )
        db = DB.open(env, "db/", options)
        for i in range(2000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        for i in range(0, 2000, 83):
            assert db.get(f"k{i:05d}".encode()) == b"x" * 60
        assert db.get(b"absent-key") is None
        db.close()
        db2 = DB.open(env, "db/", options)
        assert db2.get(b"k00042") == b"x" * 60
        db2.close()
