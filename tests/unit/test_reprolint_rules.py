"""Per-rule fixture tests for reprolint (RL001–RL005) plus suppressions.

Each rule gets at least one violating snippet and one clean snippet. The
fixtures are miniature trees under ``tmp_path/repro/…`` — the engine keys
rule scopes on the path below the innermost ``repro`` directory, so these
behave exactly like files in the real package.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.engine import PARSE_ERROR_RULE


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (pkg-relative path → source) under tmp_path/repro."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def rule_ids(tmp_path: Path, files: dict[str, str], **config) -> list[str]:
    root = make_tree(tmp_path, files)
    findings = lint_paths([root], LintConfig(**config) if config else None)
    return [f.rule for f in findings]


# -- RL001: determinism -----------------------------------------------------


class TestDeterminism:
    def test_wall_clock_flagged(self, tmp_path):
        ids = rule_ids(tmp_path, {"bench/x.py": "import time\nt = time.time()\n"})
        assert ids == ["RL001"]

    def test_perf_counter_and_sleep_flagged(self, tmp_path):
        src = "import time\na = time.perf_counter()\ntime.sleep(1)\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001", "RL001"]

    def test_datetime_now_flagged(self, tmp_path):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]

    def test_module_level_random_flagged(self, tmp_path):
        src = "import random\nr = random.random()\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]

    def test_seeded_random_instance_clean(self, tmp_path):
        src = "import random\nrng = random.Random(0)\nr = rng.random()\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []

    def test_os_urandom_flagged(self, tmp_path):
        src = "import os\nb = os.urandom(8)\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]

    def test_unsorted_listdir_flagged(self, tmp_path):
        src = "import os\nnames = os.listdir('d')\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]

    def test_sorted_listdir_clean(self, tmp_path):
        src = "import os\nnames = sorted(os.listdir('d'))\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []

    def test_simclock_advance_clean(self, tmp_path):
        src = "def run(clock):\n    clock.advance(1.0)\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []


# -- RL002: charge attribution ----------------------------------------------


UNPAIRED_ADVANCE = (
    "def sync(self):\n"
    "    cost = self.model.write_cost(10)\n"
    "    self.clock.advance(cost)\n"
    "    self.counters.inc('ops')\n"
)

PAIRED_ADVANCE = (
    "def sync(self):\n"
    "    cost = self.model.write_cost(10)\n"
    "    self.clock.advance(cost)\n"
    "    if self.tracer is not None:\n"
    "        self.tracer.charge('local', cost)\n"
)


class TestChargeAttribution:
    def test_unpaired_advance_flagged(self, tmp_path):
        ids = rule_ids(tmp_path, {"storage/dev.py": UNPAIRED_ADVANCE})
        assert ids == ["RL002"]

    def test_paired_advance_clean(self, tmp_path):
        assert rule_ids(tmp_path, {"storage/dev.py": PAIRED_ADVANCE}) == []

    def test_charge_before_advance_clean(self, tmp_path):
        src = (
            "def sync(self):\n"
            "    self.tracer.charge('cloud', 1.0)\n"
            "    self.clock.advance(1.0)\n"
        )
        assert rule_ids(tmp_path, {"mash/dev.py": src}) == []

    def test_out_of_scope_advance_ignored(self, tmp_path):
        # bench/ is not a charge scope: harness code advances clocks freely.
        assert rule_ids(tmp_path, {"bench/x.py": UNPAIRED_ADVANCE}) == []

    def test_charge_outside_window_flagged(self, tmp_path):
        filler = "    x = 1\n" * 10
        src = (
            "def sync(self):\n"
            "    self.clock.advance(1.0)\n"
            + filler
            + "    self.tracer.charge('local', 1.0)\n"
        )
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == ["RL002"]


# -- RL003: crash-point hygiene ---------------------------------------------


class TestCrashPointHandlers:
    def test_broad_except_flagged(self, tmp_path):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert rule_ids(tmp_path, {"mash/x.py": src}) == ["RL003"]

    def test_bare_except_flagged(self, tmp_path):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert rule_ids(tmp_path, {"mash/x.py": src}) == ["RL003"]

    def test_broad_except_with_reraise_clean(self, tmp_path):
        src = "try:\n    f()\nexcept Exception:\n    log()\n    raise\n"
        assert rule_ids(tmp_path, {"mash/x.py": src}) == []

    def test_narrow_except_clean(self, tmp_path):
        src = "try:\n    f()\nexcept (ValueError, KeyError):\n    pass\n"
        assert rule_ids(tmp_path, {"mash/x.py": src}) == []

    def test_swallowed_crashpointfired_flagged(self, tmp_path):
        src = (
            "from repro.sim.failure import CrashPointFired\n"
            "try:\n    f()\nexcept CrashPointFired:\n    pass\n"
        )
        assert rule_ids(tmp_path, {"mash/x.py": src}) == ["RL003"]

    def test_earlier_crash_reraise_excuses_broad_handler(self, tmp_path):
        src = (
            "from repro.sim.failure import CrashPointFired\n"
            "try:\n"
            "    f()\n"
            "except CrashPointFired:\n"
            "    raise\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert rule_ids(tmp_path, {"mash/x.py": src}) == []

    def test_nested_function_raise_does_not_count(self, tmp_path):
        # The bare raise lives in a nested def: it runs later, if ever.
        src = (
            "try:\n"
            "    f()\n"
            "except Exception:\n"
            "    def later():\n"
            "        raise\n"
        )
        assert rule_ids(tmp_path, {"mash/x.py": src}) == ["RL003"]


class TestCrashPointRegistry:
    REGISTRY = 'CRASH_SITES = {"flush.a": "desc"}\n'

    def test_consistent_registry_clean(self, tmp_path):
        files = {
            "sim/failure.py": self.REGISTRY,
            "lsm/db.py": 'def flush(cp):\n    cp.reach("flush.a")\n',
        }
        assert rule_ids(tmp_path, files) == []

    def test_unregistered_reach_flagged(self, tmp_path):
        files = {
            "sim/failure.py": self.REGISTRY,
            "lsm/db.py": (
                'def flush(cp):\n'
                '    cp.reach("flush.a")\n'
                '    cp.reach("flush.unknown")\n'
            ),
        }
        findings = lint_paths([make_tree(tmp_path, files)])
        assert [f.rule for f in findings] == ["RL003"]
        assert "flush.unknown" in findings[0].message

    def test_unreached_site_flagged(self, tmp_path):
        files = {
            "sim/failure.py": 'CRASH_SITES = {"flush.a": "d", "flush.b": "d"}\n',
            "lsm/db.py": 'def flush(cp):\n    cp.reach("flush.a")\n',
        }
        findings = lint_paths([make_tree(tmp_path, files)])
        assert [f.rule for f in findings] == ["RL003"]
        assert "flush.b" in findings[0].message

    def test_dynamically_registered_site_clean(self, tmp_path):
        files = {
            "sim/failure.py": self.REGISTRY,
            "lsm/db.py": (
                'def setup(cp):\n'
                '    cp.register("ext.site", "added at runtime")\n'
                '    cp.reach("ext.site")\n'
                '    cp.reach("flush.a")\n'
            ),
        }
        assert rule_ids(tmp_path, files) == []

    def test_no_registry_in_tree_skips_check(self, tmp_path):
        # Linting a subtree without sim/failure.py must not flag reaches.
        files = {"lsm/db.py": 'def flush(cp):\n    cp.reach("flush.a")\n'}
        assert rule_ids(tmp_path, files) == []


# -- RL004: error taxonomy ---------------------------------------------------


class TestErrorTaxonomy:
    def test_runtime_error_flagged(self, tmp_path):
        src = "def f():\n    raise RuntimeError('boom')\n"
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == ["RL004"]

    def test_oserror_flagged(self, tmp_path):
        src = "def f():\n    raise OSError('boom')\n"
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == ["RL004"]

    def test_whitelisted_builtin_clean(self, tmp_path):
        src = "def f():\n    raise ValueError('bad arg')\n"
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == []

    def test_repro_error_subclass_clean(self, tmp_path):
        src = (
            "class ReproError(Exception):\n    pass\n"
            "class MyError(ReproError):\n    pass\n"
            "def f():\n    raise MyError('x')\n"
        )
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == []

    def test_cross_file_subclass_resolution(self, tmp_path):
        files = {
            "errors.py": (
                "class ReproError(Exception):\n    pass\n"
                "class CacheError(ReproError):\n    pass\n"
            ),
            "mash/cache.py": (
                "from repro.errors import CacheError\n"
                "def f():\n    raise CacheError('x')\n"
            ),
        }
        assert rule_ids(tmp_path, files) == []

    def test_non_repro_local_class_flagged(self, tmp_path):
        src = (
            "class Oops(RuntimeError):\n    pass\n"
            "def f():\n    raise Oops('x')\n"
        )
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == ["RL004"]

    def test_reraised_variable_ignored(self, tmp_path):
        # `raise exc` re-raises a captured variable: unresolvable, skipped.
        src = "def f(exc):\n    raise exc\n"
        assert rule_ids(tmp_path, {"lsm/x.py": src}) == []

    def test_crash_point_fired_whitelisted(self, tmp_path):
        src = (
            "from repro.sim.failure import CrashPointFired\n"
            "def f():\n    raise CrashPointFired('site')\n"
        )
        assert rule_ids(tmp_path, {"sim/x.py": src}) == []


# -- RL005: no real I/O ------------------------------------------------------


class TestRealIO:
    @pytest.mark.parametrize("mod", ["os", "pathlib", "socket", "threading"])
    def test_banned_import_flagged(self, tmp_path, mod):
        assert rule_ids(tmp_path, {"lsm/x.py": f"import {mod}\n"}) == ["RL005"]

    def test_from_import_flagged(self, tmp_path):
        src = "from pathlib import Path\n"
        assert rule_ids(tmp_path, {"storage/x.py": src}) == ["RL005"]

    def test_open_builtin_flagged(self, tmp_path):
        src = "def f(p):\n    with open(p) as fh:\n        return fh.read()\n"
        assert rule_ids(tmp_path, {"sim/x.py": src}) == ["RL005"]

    def test_method_named_open_clean(self, tmp_path):
        src = "def f(store):\n    return store.open('x')\n"
        assert rule_ids(tmp_path, {"sim/x.py": src}) == []

    def test_whitelisted_module_clean(self, tmp_path):
        # storage/diskfile.py is the deliberate real-I/O exception.
        src = "import os\nfrom pathlib import Path\n"
        assert rule_ids(tmp_path, {"storage/diskfile.py": src}) == []

    def test_outside_sim_scope_clean(self, tmp_path):
        assert rule_ids(tmp_path, {"bench/x.py": "import os\n"}) == []


# -- suppressions and parse errors ------------------------------------------


class TestSuppressions:
    def test_trailing_marker_suppresses(self, tmp_path):
        src = "import time\nt = time.time()  # reprolint: ignore[RL001] -- why\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []

    def test_marker_line_above_suppresses(self, tmp_path):
        src = (
            "import time\n"
            "# reprolint: ignore[RL001] -- wall time is operator feedback\n"
            "t = time.time()\n"
        )
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        src = "import time\nt = time.time()  # reprolint: ignore\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        src = "import time\nt = time.time()  # reprolint: ignore[RL005]\n"
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]

    def test_marker_does_not_leak_two_lines_down(self, tmp_path):
        src = (
            "import time\n"
            "# reprolint: ignore[RL001]\n"
            "x = 1\n"
            "t = time.time()\n"
        )
        assert rule_ids(tmp_path, {"bench/x.py": src}) == ["RL001"]


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_paths([make_tree(tmp_path, {"bench/x.py": "def broken(:\n"})])
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]


class TestRuleSelection:
    def test_enabled_rules_filters(self, tmp_path):
        files = {
            "lsm/x.py": "import os\ndef f():\n    raise RuntimeError('x')\n",
        }
        root = make_tree(tmp_path, files)
        all_ids = {f.rule for f in lint_paths([root])}
        assert all_ids == {"RL004", "RL005"}
        only = lint_paths([root], LintConfig(enabled_rules=("RL005",)))
        assert {f.rule for f in only} == {"RL005"}

    def test_findings_are_deterministically_ordered(self, tmp_path):
        files = {
            "lsm/a.py": "import os\nimport socket\n",
            "lsm/b.py": "import os\n",
        }
        root = make_tree(tmp_path, files)
        first = [(f.path, f.line, f.rule) for f in lint_paths([root])]
        second = [(f.path, f.line, f.rule) for f in lint_paths([root])]
        assert first == second
        assert first == sorted(first)
