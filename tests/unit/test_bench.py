"""Unit tests for the report table and bench harness."""

import pytest

from repro.bench.harness import SYSTEMS, HarnessKnobs, make_store
from repro.bench.report import Table


class TestTable:
    def test_render_aligned(self):
        t = Table("demo", ["name", "value"])
        t.add_row("alpha", 1.2345)
        t.add_row("b", 10000.0)
        text = t.render()
        assert "== demo ==" in text
        assert "alpha" in text and "10,000" in text

    def test_notes_rendered(self):
        t = Table("demo", ["x"], notes=["a note"])
        assert "note: a note" in t.render()

    def test_column_and_lookup(self):
        t = Table("demo", ["system", "score"])
        t.add_row("a", 1.0)
        t.add_row("b", 2.0)
        assert t.column("score") == [1.0, 2.0]
        assert t.cell("b", "score") == 2.0
        with pytest.raises(KeyError):
            t.cell("zz", "score")

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add_row(0.000123)
        t.add_row(0)
        text = t.render()
        assert "0.000123" in text


class TestHarness:
    def test_all_systems_constructible(self):
        for system in SYSTEMS:
            store = make_store(system)
            store.put(b"k", b"v")
            assert store.get(b"k") == b"v"
            assert store.name == system

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            make_store("spanner")

    def test_cloud_rtt_knob_respected(self):
        slow = make_store("cloud-only", HarnessKnobs(cloud_rtt=0.2))
        fast = make_store("cloud-only", HarnessKnobs(cloud_rtt=0.001))
        slow.put(b"k", b"v")
        fast.put(b"k", b"v")
        assert slow.clock.now > fast.clock.now

    def test_pin_metadata_ablation(self):
        store = make_store("rocksmash", HarnessKnobs(pin_metadata=False))
        for i in range(2000):
            store.put(f"k{i:05d}".encode(), b"v" * 100)
        store.flush()
        assert store.pcache.meta_bytes == 0

    def test_xwal_shards_knob(self):
        store = make_store("rocksmash", HarnessKnobs(xwal_shards=7))
        store.put(b"k", b"v")
        xlogs = [n for n in store.env.list_files("db/") if n.endswith(".xlog")]
        assert len(xlogs) == 7

    def test_layout_knob(self):
        naive = make_store("rocksmash", HarnessKnobs(layout_aware=False))
        assert naive.heat.config.aware is False
