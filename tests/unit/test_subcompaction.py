"""Unit tests: subcompaction boundary picking, partition planning, and the
eager (coalesced) compaction readahead path."""

import pytest

from repro.lsm.compaction import pick_subcompaction_boundaries
from repro.lsm.db import DB
from repro.lsm.format import BLOCK_TRAILER_SIZE, BlockHandle, seal_block
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData
from repro.mash.readahead import ReadaheadBuffer
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel
from repro.storage.cloud import CloudObjectStore
from repro.storage.env import CloudEnv, LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import MAX_SEQUENCE, TYPE_VALUE, make_internal_key


def meta(number, smallest, largest):
    return FileMetaData(
        number=number,
        file_size=1024,
        smallest=make_internal_key(smallest, MAX_SEQUENCE, TYPE_VALUE),
        largest=make_internal_key(largest, 1, TYPE_VALUE),
    )


class TestBoundaryPicking:
    def test_no_files_no_boundaries(self):
        assert pick_subcompaction_boundaries([], 4) == []

    def test_serial_request_no_boundaries(self):
        files = [meta(1, b"a", b"m"), meta(2, b"n", b"z")]
        assert pick_subcompaction_boundaries(files, 1) == []

    def test_single_file_without_anchors_cannot_split(self):
        # One file contributes only its two fences — both excluded as the
        # global extremes, so there is nothing to split on.
        assert pick_subcompaction_boundaries([meta(1, b"a", b"z")], 4) == []

    def test_single_key_range(self):
        files = [meta(1, b"k", b"k"), meta(2, b"k", b"k")]
        assert pick_subcompaction_boundaries(files, 8) == []

    def test_fences_become_boundaries(self):
        files = [
            meta(1, b"a", b"f"),
            meta(2, b"g", b"p"),
            meta(3, b"q", b"z"),
        ]
        boundaries = pick_subcompaction_boundaries(files, 4)
        assert boundaries == sorted(boundaries)
        assert 1 <= len(boundaries) <= 3
        for boundary in boundaries:
            assert b"a" < boundary < b"z"

    def test_anchors_split_overlapping_l0_files(self):
        # Every L0 file spans the whole range: fences collapse to the two
        # extremes and only in-file anchors provide interior candidates.
        files = [meta(1, b"a", b"z"), meta(2, b"a", b"z")]
        assert pick_subcompaction_boundaries(files, 4) == []
        anchors = {1: [b"g", b"n", b"t"], 2: [b"h", b"o", b"u"]}
        boundaries = pick_subcompaction_boundaries(
            files, 4, anchors_of=lambda m: anchors[m.number]
        )
        assert 1 <= len(boundaries) <= 3
        assert boundaries == sorted(set(boundaries))

    def test_skewed_distribution_respects_cap(self):
        # 20 files crammed into a narrow range plus one outlier: at most
        # max_parts - 1 boundaries, all strictly interior, ever returned.
        files = [meta(i, b"aa", b"ab") for i in range(1, 21)]
        files.append(meta(99, b"aa", b"zz"))
        anchors = lambda m: [b"aa", b"ab"] if m.number != 99 else [b"m"]
        boundaries = pick_subcompaction_boundaries(files, 4, anchors_of=anchors)
        assert len(boundaries) <= 3
        for boundary in boundaries:
            assert b"aa" < boundary < b"zz"

    def test_duplicate_candidates_deduped(self):
        files = [meta(i, b"a", b"z") for i in range(1, 5)]
        boundaries = pick_subcompaction_boundaries(
            files, 8, anchors_of=lambda m: [b"m", b"m", b"m"]
        )
        assert boundaries == [b"m"]


def tiny_options(**overrides) -> Options:
    base = dict(
        write_buffer_size=2 << 10,
        block_size=256,
        max_bytes_for_level_base=8 << 10,
        target_file_size_base=2 << 10,
        block_cache_bytes=0,
    )
    base.update(overrides)
    return Options(**base)


class TestPartitionedCompaction:
    def fill_db(self, parallelism, readahead=0):
        env = LocalEnv(LocalDevice(SimClock()))
        db = DB.open(
            env,
            "db/",
            tiny_options(
                max_subcompactions=parallelism,
                compaction_readahead_bytes=readahead,
            ),
        )
        for i in range(600):
            db.put(f"key{i * 7 % 600:05d}".encode(), f"value{i}".encode() * 4)
        db.compact_range(None, None)
        return db

    def test_parallel_contents_match_serial(self):
        serial = self.fill_db(1)
        parallel = self.fill_db(4)
        try:
            assert list(parallel.scan(None, None)) == list(serial.scan(None, None))
        finally:
            serial.close()
            parallel.close()

    def test_subcompactions_counted(self):
        db = self.fill_db(4)
        try:
            assert db.compaction_stats.subcompactions_run >= 2
            assert "subcompactions=" in db.get_property("repro.compaction-stats")
        finally:
            db.close()

    def test_serial_runs_no_subcompactions(self):
        db = self.fill_db(1)
        try:
            assert db.compaction_stats.subcompactions_run == 0
        finally:
            db.close()

    def test_readahead_counted_and_contents_match(self):
        plain = self.fill_db(1)
        coalesced = self.fill_db(1, readahead=64 << 10)
        try:
            assert coalesced.compaction_stats.coalesced_fetches > 0
            assert coalesced.compaction_stats.coalesced_fetched_bytes > 0
            assert list(coalesced.scan(None, None)) == list(plain.scan(None, None))
        finally:
            plain.close()
            coalesced.close()


def build_cloud_file(num_blocks=40, block_payload=100, rtt=10e-3):
    clock = SimClock()
    store = CloudObjectStore(clock, LatencyModel(rtt, rtt, 1e6, 1e6))
    data = bytearray()
    handles = []
    for i in range(num_blocks):
        sealed = seal_block(bytes([i % 256]) * block_payload)
        handles.append(BlockHandle(len(data), block_payload))
        data += sealed
    store.put("table.sst", bytes(data))
    file = CloudEnv(store).new_random_access_file("table.sst")
    return file, store, handles


class TestEagerReadahead:
    def test_serves_from_first_block(self):
        file, store, handles = build_cloud_file()
        buffer = ReadaheadBuffer(file, readahead_bytes=64 << 10, eager=True)
        assert buffer.get(handles[0]) == bytes([0]) * 100
        assert buffer.stats.fetches == 1

    def test_one_fetch_covers_many_blocks(self):
        file, store, handles = build_cloud_file()
        buffer = ReadaheadBuffer(file, readahead_bytes=64 << 10, eager=True)
        before = store.counters.get("cloud.get_ops")
        for i, handle in enumerate(handles):
            assert buffer.get(handle) == bytes([i % 256]) * 100
        gets = store.counters.get("cloud.get_ops") - before
        # 40 blocks fit comfortably in one 64K window (plus the footer read
        # pattern is not exercised here): far fewer requests than blocks.
        assert gets * 2 <= len(handles)
        assert buffer.stats.sequential_hits >= len(handles) - buffer.stats.fetches

    def test_jump_restarts_run_instead_of_disabling(self):
        file, store, handles = build_cloud_file()
        buffer = ReadaheadBuffer(file, readahead_bytes=64 << 10, eager=True)
        buffer.get(handles[0])
        buffer.get(handles[1])
        # A subcompaction-style seek to a later offset: eager mode restarts
        # the coalesced run there rather than degrading to per-block reads.
        assert buffer.get(handles[20]) == bytes([20]) * 100
        assert buffer.get(handles[21]) == bytes([21]) * 100
        assert buffer.stats.fetches == 2

    def test_lazy_mode_unchanged_by_eager_flag_default(self):
        file, store, handles = build_cloud_file()
        buffer = ReadaheadBuffer(file, readahead_bytes=64 << 10)
        assert buffer.eager is False
        assert buffer.get(handles[0]) is None
        assert buffer.get(handles[1]) is None
        assert buffer.get(handles[2]) is not None
