"""Unit tests for the DRAM LRU block cache."""

import pytest

from repro.lsm.block_cache import LRUBlockCache


class TestLRUBlockCache:
    def test_miss_then_hit(self):
        cache = LRUBlockCache(1000)
        assert cache.get("f", 0) is None
        cache.put("f", 0, b"payload")
        assert cache.get("f", 0) == b"payload"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_eviction_lru_order(self):
        cache = LRUBlockCache(30)
        cache.put("f", 0, b"x" * 10)
        cache.put("f", 1, b"x" * 10)
        cache.put("f", 2, b"x" * 10)
        cache.get("f", 0)  # refresh 0
        cache.put("f", 3, b"x" * 10)  # evicts 1 (LRU)
        assert cache.get("f", 0) is not None
        assert cache.get("f", 1) is None
        assert cache.get("f", 3) is not None

    def test_oversized_entry_not_cached(self):
        cache = LRUBlockCache(10)
        cache.put("f", 0, b"x" * 100)
        assert cache.get("f", 0) is None
        assert cache.used_bytes == 0

    def test_replace_same_key(self):
        cache = LRUBlockCache(100)
        cache.put("f", 0, b"a" * 10)
        cache.put("f", 0, b"b" * 20)
        assert cache.get("f", 0) == b"b" * 20
        assert cache.used_bytes == 20

    def test_evict_file(self):
        cache = LRUBlockCache(1000)
        cache.put("f1", 0, b"x")
        cache.put("f1", 10, b"y")
        cache.put("f2", 0, b"z")
        assert cache.evict_file("f1") == 2
        assert cache.get("f1", 0) is None
        assert cache.get("f2", 0) == b"z"

    def test_clear(self):
        cache = LRUBlockCache(1000)
        cache.put("f", 0, b"x")
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_budget_respected(self):
        cache = LRUBlockCache(100)
        for i in range(50):
            cache.put("f", i, b"x" * 10)
        assert cache.used_bytes <= 100
        assert len(cache) <= 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBlockCache(-1)
