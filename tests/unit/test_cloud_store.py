"""Unit tests for the simulated cloud object store."""

import pytest

from repro.errors import IOErrorSim, NotFoundError
from repro.sim.clock import SimClock
from repro.sim.failure import FaultInjector, RetryPolicy
from repro.storage.cloud import CloudObjectStore


@pytest.fixture
def store():
    return CloudObjectStore(SimClock())


class TestObjectAPI:
    def test_put_get(self, store):
        store.put("key", b"value")
        assert store.get("key") == b"value"

    def test_put_overwrites(self, store):
        store.put("key", b"v1")
        store.put("key", b"v2")
        assert store.get("key") == b"v2"

    def test_get_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("missing")

    def test_get_range(self, store):
        store.put("k", b"0123456789")
        assert store.get_range("k", 3, 4) == b"3456"
        assert store.get_range("k", 8, 10) == b"89"
        assert store.get_range("k", 50, 10) == b""

    def test_get_range_negative_rejected(self, store):
        store.put("k", b"abc")
        with pytest.raises(ValueError):
            store.get_range("k", -1, 2)

    def test_head(self, store):
        store.put("k", b"abcd")
        assert store.head("k") == 4

    def test_delete_idempotent(self, store):
        store.put("k", b"v")
        store.delete("k")
        store.delete("k")  # no error, like S3
        assert not store.exists("k")

    def test_copy(self, store):
        store.put("src", b"data")
        store.copy("src", "dst")
        assert store.get("dst") == b"data"
        assert store.get("src") == b"data"

    def test_list_keys(self, store):
        for k in ["a/1", "a/2", "b/1"]:
            store.put(k, b"x")
        assert store.list_keys("a/") == ["a/1", "a/2"]
        assert store.list_keys() == ["a/1", "a/2", "b/1"]

    def test_used_bytes(self, store):
        store.put("a", b"xx")
        store.put("b", b"yyy")
        assert store.used_bytes() == 5


class TestMultipart:
    def test_invisible_until_complete(self, store):
        store.upload_part("obj", b"part1")
        assert not store.exists("obj")
        store.complete_multipart("obj", b"part1part2")
        assert store.get("obj") == b"part1part2"


class TestAccounting:
    def test_requests_charge_rtt(self):
        clock = SimClock()
        store = CloudObjectStore(clock)
        store.put("k", b"v")
        t = clock.now
        assert t >= store.model.write_latency
        store.get("k")
        assert clock.now > t

    def test_ranged_get_cheaper_than_full(self):
        clock = SimClock()
        store = CloudObjectStore(clock)
        store.put("k", b"x" * 10_000_000)
        t0 = clock.now
        store.get_range("k", 0, 4096)
        ranged = clock.now - t0
        t1 = clock.now
        store.get("k")
        full = clock.now - t1
        assert ranged < full / 5

    def test_counters(self, store):
        store.put("k", b"12345")
        store.get("k")
        store.get_range("k", 0, 2)
        assert store.counters.get("cloud.put_ops") == 1
        assert store.counters.get("cloud.put_bytes") == 5
        assert store.counters.get("cloud.get_ops") == 2
        assert store.counters.get("cloud.get_bytes") == 7


class TestRetries:
    def test_transient_fault_retried(self):
        clock = SimClock()
        faults = FaultInjector()
        store = CloudObjectStore(clock, faults=faults)
        store.put("k", b"v")
        faults.schedule_failure("throttle")
        assert store.get("k") == b"v"  # retried transparently
        assert store.counters.get("cloud.retries") == 1

    def test_retry_charges_backoff_time(self):
        clock = SimClock()
        faults = FaultInjector()
        retry = RetryPolicy(initial_backoff=0.5)
        store = CloudObjectStore(clock, faults=faults, retry=retry)
        store.put("k", b"v")
        t0 = clock.now
        store.get("k")
        clean = clock.now - t0
        faults.schedule_failure()
        t1 = clock.now
        store.get("k")
        faulty = clock.now - t1
        assert faulty >= clean + 0.5

    def test_exhausted_retries_raise(self):
        faults = FaultInjector()
        retry = RetryPolicy(max_attempts=3, initial_backoff=0.001)
        store = CloudObjectStore(SimClock(), faults=faults, retry=retry)
        store.put("k", b"v")
        for _ in range(3):
            faults.schedule_failure()
        with pytest.raises(IOErrorSim):
            store.get("k")
