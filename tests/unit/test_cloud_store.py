"""Unit tests for the simulated cloud object store."""

import pytest

from repro.errors import IOErrorSim, NotFoundError
from repro.sim.clock import SimClock
from repro.sim.failure import FaultInjector, RetryPolicy
from repro.storage.cloud import CloudObjectStore


@pytest.fixture
def store():
    return CloudObjectStore(SimClock())


class TestObjectAPI:
    def test_put_get(self, store):
        store.put("key", b"value")
        assert store.get("key") == b"value"

    def test_put_overwrites(self, store):
        store.put("key", b"v1")
        store.put("key", b"v2")
        assert store.get("key") == b"v2"

    def test_get_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("missing")

    def test_get_range(self, store):
        store.put("k", b"0123456789")
        assert store.get_range("k", 3, 4) == b"3456"
        assert store.get_range("k", 8, 10) == b"89"
        assert store.get_range("k", 50, 10) == b""

    def test_get_range_negative_rejected(self, store):
        store.put("k", b"abc")
        with pytest.raises(ValueError):
            store.get_range("k", -1, 2)

    def test_head(self, store):
        store.put("k", b"abcd")
        assert store.head("k") == 4

    def test_delete_idempotent(self, store):
        store.put("k", b"v")
        store.delete("k")
        store.delete("k")  # no error, like S3
        assert not store.exists("k")

    def test_copy(self, store):
        store.put("src", b"data")
        store.copy("src", "dst")
        assert store.get("dst") == b"data"
        assert store.get("src") == b"data"

    def test_list_keys(self, store):
        for k in ["a/1", "a/2", "b/1"]:
            store.put(k, b"x")
        assert store.list_keys("a/") == ["a/1", "a/2"]
        assert store.list_keys() == ["a/1", "a/2", "b/1"]

    def test_used_bytes(self, store):
        store.put("a", b"xx")
        store.put("b", b"yyy")
        assert store.used_bytes() == 5


class TestMultipart:
    def test_invisible_until_complete(self, store):
        store.upload_part("obj", b"part1")
        assert not store.exists("obj")
        store.complete_multipart("obj", b"part1part2")
        assert store.get("obj") == b"part1part2"


class TestAccounting:
    def test_requests_charge_rtt(self):
        clock = SimClock()
        store = CloudObjectStore(clock)
        store.put("k", b"v")
        t = clock.now
        assert t >= store.model.write_latency
        store.get("k")
        assert clock.now > t

    def test_ranged_get_cheaper_than_full(self):
        clock = SimClock()
        store = CloudObjectStore(clock)
        store.put("k", b"x" * 10_000_000)
        t0 = clock.now
        store.get_range("k", 0, 4096)
        ranged = clock.now - t0
        t1 = clock.now
        store.get("k")
        full = clock.now - t1
        assert ranged < full / 5

    def test_counters(self, store):
        store.put("k", b"12345")
        store.get("k")
        store.get_range("k", 0, 2)
        assert store.counters.get("cloud.put_ops") == 1
        assert store.counters.get("cloud.put_bytes") == 5
        assert store.counters.get("cloud.get_ops") == 2
        assert store.counters.get("cloud.get_bytes") == 7


class TestRetries:
    def test_transient_fault_retried(self):
        clock = SimClock()
        faults = FaultInjector()
        store = CloudObjectStore(clock, faults=faults)
        store.put("k", b"v")
        faults.schedule_failure("throttle")
        assert store.get("k") == b"v"  # retried transparently
        assert store.counters.get("cloud.retries") == 1

    def test_retry_charges_backoff_time(self):
        clock = SimClock()
        faults = FaultInjector()
        retry = RetryPolicy(initial_backoff=0.5)
        store = CloudObjectStore(clock, faults=faults, retry=retry)
        store.put("k", b"v")
        t0 = clock.now
        store.get("k")
        clean = clock.now - t0
        faults.schedule_failure()
        t1 = clock.now
        store.get("k")
        faulty = clock.now - t1
        assert faulty >= clean + 0.5

    def test_exhausted_retries_raise(self):
        faults = FaultInjector()
        retry = RetryPolicy(max_attempts=3, initial_backoff=0.001)
        store = CloudObjectStore(SimClock(), faults=faults, retry=retry)
        store.put("k", b"v")
        for _ in range(3):
            faults.schedule_failure()
        with pytest.raises(IOErrorSim):
            store.get("k")


class TestMutatingOpAccounting:
    """Audit every mutating op against the cost model's inputs.

    ``CostModel.request_cost`` bills ``cloud.put_ops``; ``storage_cost``
    bills ``used_bytes()``. Each mutating request must keep both honest —
    the server-side ``copy`` historically incremented ``put_ops`` without
    ``put_bytes``/storage for the duplicated object.
    """

    def test_put(self, store):
        store.put("k", b"12345")
        assert store.counters.get("cloud.put_ops") == 1
        assert store.counters.get("cloud.put_bytes") == 5
        assert store.used_bytes() == 5

    def test_delete(self, store):
        store.put("k", b"12345")
        store.delete("k")
        assert store.counters.get("cloud.delete_ops") == 1
        assert store.counters.get("cloud.put_ops") == 1  # unchanged
        assert store.used_bytes() == 0

    def test_copy(self, store):
        store.put("src", b"abcdef")
        store.copy("src", "dst")
        # One PUT request whose stored bytes count; no egress.
        assert store.counters.get("cloud.put_ops") == 2
        assert store.counters.get("cloud.put_bytes") == 12
        assert store.counters.get("cloud.copy_bytes") == 6
        assert store.counters.get("cloud.get_bytes") == 0
        assert store.used_bytes() == 12

    def test_upload_part(self, store):
        store.upload_part("obj", b"abcd")
        assert store.counters.get("cloud.put_ops") == 1
        assert store.counters.get("cloud.put_bytes") == 4
        assert store.used_bytes() == 0  # invisible until completed

    def test_complete_multipart(self, store):
        store.upload_part("obj", b"abcd")
        store.complete_multipart("obj", b"abcdefgh")
        # Completion is one more request; parts already paid the bytes.
        assert store.counters.get("cloud.put_ops") == 2
        assert store.counters.get("cloud.put_bytes") == 4
        assert store.used_bytes() == 8

    def test_head_and_list_are_not_puts(self, store):
        store.put("k", b"xy")
        store.head("k")
        store.list_keys()
        assert store.counters.get("cloud.put_ops") == 1
        assert store.counters.get("cloud.head_ops") == 1
        assert store.counters.get("cloud.list_ops") == 1


class TestCrashSemantics:
    def test_crash_drops_incomplete_multipart(self, store):
        store.upload_part("obj", b"part1")
        assert store.pending_multiparts() == ["obj"]
        store.crash()
        assert store.pending_multiparts() == []
        store.complete_multipart("other", b"x")  # unrelated upload still fine
        assert not store.exists("obj")

    def test_crash_keeps_completed_objects(self, store):
        store.put("a", b"1")
        store.upload_part("b", b"2")
        store.complete_multipart("b", b"2")
        store.crash()
        assert store.get("a") == b"1"
        assert store.get("b") == b"2"

    def test_completion_clears_pending(self, store):
        store.upload_part("obj", b"p1")
        store.upload_part("obj", b"p2")
        store.complete_multipart("obj", b"p1p2")
        assert store.pending_multiparts() == []


class TestOpPrefixFilter:
    def test_faults_only_hit_matching_ops(self):
        faults = FaultInjector(error_rate=1.0, seed=1, op_prefixes=("cloud.put",))
        store = CloudObjectStore(
            SimClock(), faults=faults, retry=RetryPolicy(max_attempts=2, initial_backoff=1e-4)
        )
        with pytest.raises(IOErrorSim):
            store.put("k", b"v")
        store._objects["k"] = b"v"  # place the object despite the write storm
        assert store.get("k") == b"v"  # reads never fail
        assert store.get_range("k", 0, 1) == b"v"
        assert faults.injected >= 2

    def test_fail_next_respects_filter(self):
        faults = FaultInjector(op_prefixes=("cloud.get",))
        store = CloudObjectStore(SimClock(), faults=faults)
        faults.schedule_failure("targeted")
        store.put("k", b"v")  # filtered out: the scheduled failure waits
        assert faults.fail_next  # still queued
        assert store.get("k") == b"v"  # retried transparently
        assert store.counters.get("cloud.retries") == 1

    def test_default_remains_uniform(self):
        faults = FaultInjector()
        assert faults.matches("local.sync(db/000001.log)")
        assert faults.matches("cloud.get(k)")
