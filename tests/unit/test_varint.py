"""Unit tests for varint encoding."""

import pytest

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_varint,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
)


class TestEncodeDecode:
    def test_zero(self):
        assert encode_varint(0) == b"\x00"
        assert decode_varint(b"\x00") == (0, 1)

    def test_single_byte_boundary(self):
        assert encode_varint(127) == b"\x7f"
        assert len(encode_varint(128)) == 2

    def test_known_value(self):
        # 300 = 0b100101100 -> 0xAC 0x02
        assert encode_varint(300) == b"\xac\x02"
        assert decode_varint(b"\xac\x02") == (300, 2)

    @pytest.mark.parametrize(
        "value", [1, 127, 128, 255, 16384, 2**32 - 1, 2**32, 2**56, 2**64 - 1]
    )
    def test_roundtrip(self, value):
        buf = encode_varint(value)
        decoded, end = decode_varint(buf)
        assert decoded == value
        assert end == len(buf)

    def test_decode_with_offset(self):
        buf = b"\xffPAD" + encode_varint(300)
        assert decode_varint(buf, 4) == (300, 4 + 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80" * 11 + b"\x01")


class TestLengthPrefixed:
    def test_roundtrip(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        put_length_prefixed(out, b"")
        put_length_prefixed(out, b"x" * 1000)
        data1, pos = get_length_prefixed(bytes(out))
        assert data1 == b"hello"
        data2, pos = get_length_prefixed(bytes(out), pos)
        assert data2 == b""
        data3, pos = get_length_prefixed(bytes(out), pos)
        assert data3 == b"x" * 1000
        assert pos == len(out)

    def test_truncated_slice_raises(self):
        out = bytearray()
        put_length_prefixed(out, b"hello")
        with pytest.raises(CorruptionError):
            get_length_prefixed(bytes(out[:-1]))
