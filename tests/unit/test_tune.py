"""Unit tests for the workload-adaptive tuning subsystem (repro.tune).

Covers the Monkey allocation math, the per-level FilterAllocation plumbing
object, the Options filter-policy resolution (including the regression
where ``bloom_bits_per_key`` clobbered an explicit ``filter_policy``), and
the controller's knob rules + two-window confirmation behaviour against a
stub engine.
"""

import pytest

from repro.lsm.compaction import CompactionStats
from repro.lsm.filters import MAX_BITS_PER_KEY, FilterAllocation
from repro.lsm.options import Options
from repro.obs.trace import Tracer
from repro.sim.clock import SimClock
from repro.tune import TuningConfig, TuningController, monkey_allocation
from repro.tune.controller import WindowStats
from repro.util.bloom import BloomFilterPolicy


class StubDB:
    """Just enough engine surface for the controller: options, compaction
    stats, a level summary, and (optionally) a blob store marker."""

    def __init__(self, options=None, blob_store=None):
        self.options = options if options is not None else Options()
        self.compaction_stats = CompactionStats()
        self.blob_store = blob_store
        self.levels = []  # (level, files, bytes)

    def level_summary(self):
        return self.levels


def make_controller(config=None, options=None, blob_store=None, **kw):
    clock = SimClock()
    tracer = Tracer(clock)
    db = StubDB(options=options, blob_store=blob_store)
    controller = TuningController(
        db=db,
        tracer=tracer,
        clock=clock,
        config=config if config is not None else TuningConfig(interval_ops=10),
        **kw,
    )
    return controller, db


def stationary(**overrides):
    """A WindowStats with quiet defaults, overridable per test."""
    defaults = dict(
        ops=100,
        point_share=1.0,
        scan_share=0.0,
        write_share=0.0,
        prefetch_hits=0,
        prefetch_waste=0,
        cloud_ops=0,
        cloud_seconds=0.0,
        compactions=0,
        compaction_bytes_read=0,
        level_bytes=(0,),
        write_bytes=0,
        value_hist=(),
        scan_bytes=0,
    )
    defaults.update(overrides)
    return WindowStats(**defaults)


class TestFilterAllocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            FilterAllocation(bits_per_level=())
        with pytest.raises(ValueError):
            FilterAllocation(bits_per_level=(10, -1))
        with pytest.raises(ValueError):
            FilterAllocation(bits_per_level=(MAX_BITS_PER_KEY + 1,))

    def test_bits_for_clamps_to_deepest_entry(self):
        alloc = FilterAllocation(bits_per_level=(14, 9, 4))
        assert [alloc.bits_for(lvl) for lvl in range(6)] == [14, 9, 4, 4, 4, 4]

    def test_policy_for_zero_bits_is_none(self):
        alloc = FilterAllocation(bits_per_level=(10, 0))
        assert alloc.policy_for(0) == BloomFilterPolicy(bits_per_key=10)
        assert alloc.policy_for(1) is None
        assert alloc.policy_for(5) is None

    def test_uniform_and_describe(self):
        alloc = FilterAllocation.uniform(10, 3)
        assert alloc.bits_per_level == (10, 10, 10)
        assert alloc.describe() == "10/10/10"


class TestMonkeyAllocation:
    def test_bits_decrease_with_depth(self):
        alloc = monkey_allocation(
            [1 << 20, 10 << 20, 100 << 20],
            budget_bits_per_key=10,
            size_multiplier=10,
        )
        bits = alloc.bits_per_level
        assert all(a >= b for a, b in zip(bits, bits[1:]))
        assert bits[0] > bits[-1]

    def test_weighted_memory_within_uniform_budget(self):
        level_bytes = [1 << 20, 10 << 20, 100 << 20]
        budget = 10
        alloc = monkey_allocation(
            level_bytes, budget_bits_per_key=budget, size_multiplier=10
        )
        total = sum(level_bytes)
        spend = sum(
            (b / total) * alloc.bits_for(i) for i, b in enumerate(level_bytes)
        )
        assert spend <= budget + 1e-9

    def test_zero_point_share_is_flat(self):
        alloc = monkey_allocation(
            [1 << 20, 100 << 20],
            budget_bits_per_key=10,
            size_multiplier=10,
            point_read_share=0.0,
        )
        # Slope 0: every level gets the uniform budget.
        assert len(set(alloc.bits_per_level)) == 1

    def test_zero_budget_and_empty_tree(self):
        assert monkey_allocation(
            [1 << 20], budget_bits_per_key=0, size_multiplier=10
        ).bits_per_level == (0,)
        assert monkey_allocation(
            [0, 0], budget_bits_per_key=10, size_multiplier=10
        ).bits_per_level == (10, 10)

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            monkey_allocation([1], budget_bits_per_key=10, size_multiplier=1)


class TestOptionsFilterPolicy:
    def test_explicit_policy_not_clobbered_by_bits_per_key(self):
        # Regression: __post_init__ used to overwrite any explicit policy
        # whenever bloom_bits_per_key was nonzero (the default!).
        options = Options(
            bloom_bits_per_key=8, filter_policy=BloomFilterPolicy(bits_per_key=12)
        )
        assert options.filter_policy == BloomFilterPolicy(bits_per_key=12)

    def test_bits_per_key_synthesizes_default_policy(self):
        assert Options(bloom_bits_per_key=8).filter_policy == BloomFilterPolicy(
            bits_per_key=8
        )

    def test_table_filter_policy_prefers_allocation(self):
        options = Options(
            bloom_bits_per_key=10,
            filter_allocation=FilterAllocation(bits_per_level=(12, 6, 0)),
        )
        assert options.table_filter_policy(0) == BloomFilterPolicy(bits_per_key=12)
        assert options.table_filter_policy(2) is None
        assert Options(bloom_bits_per_key=0).table_filter_policy(0) is None


def point_read_window(controller):
    """Drive one full evaluation window of point reads; the filter rule
    only skews bits when the window actually contains point lookups
    (``point_read_share`` scales the Monkey slope)."""
    for _ in range(controller.config.interval_ops):
        controller.record_op("get")
    return controller.trajectory[-1]


class TestConfirmationRule:
    def test_change_needs_two_consecutive_windows(self):
        controller, db = make_controller()
        db.levels = [(0, 1, 1 << 20), (2, 4, 100 << 20)]
        first = point_read_window(controller)
        assert "filter_allocation" not in first.changed
        second = point_read_window(controller)
        assert "filter_allocation" in second.changed
        assert db.options.filter_allocation is not None

    def test_one_odd_window_never_moves_a_knob(self):
        controller, db = make_controller()
        db.levels = [(0, 1, 1 << 20), (2, 4, 100 << 20)]
        point_read_window(controller)  # pends the skewed allocation
        db.levels = []  # signal vanishes before confirmation
        point_read_window(controller)
        assert db.options.filter_allocation is None

    def test_stationary_stats_reach_a_fixed_point(self):
        controller, db = make_controller()
        db.levels = [(0, 1, 1 << 20), (1, 2, 10 << 20), (3, 9, 200 << 20)]
        decisions = [point_read_window(controller) for _ in range(10)]
        assert any(d.changed for d in decisions[:4])
        assert all(not d.changed for d in decisions[4:])


class TestKnobRules:
    def test_prefetch_off_below_scan_floor(self):
        controller, _ = make_controller()
        assert controller._prefetch_target(stationary(scan_share=0.01), 3) == 0

    def test_prefetch_stays_off_for_single_table_scans_on_warm_trees(self):
        # Scans that fit inside one table abandon most speculative opens;
        # on a warm tree (few cloud requests per op) that waste is pure
        # loss, so the depth drops to 0.
        controller, db = make_controller()
        short = stationary(
            scan_share=0.9, scan_bytes=90 * (db.options.target_file_size_base // 4)
        )
        assert controller._prefetch_target(short, 0) == 0
        assert controller._prefetch_target(short, 3) == 0

    def test_prefetch_engages_for_short_scans_when_opens_are_cloud_bound(self):
        # Same sub-table scans, but the window shows heavy cloud traffic:
        # a cold table open is then a chain of round trips, and the rare
        # next-table crossing pays for the abandoned opens.
        controller, db = make_controller()
        short_cold = stationary(
            scan_share=0.9,
            scan_bytes=90 * (db.options.target_file_size_base // 4),
            cloud_ops=500,
            cloud_seconds=5.0,
        )
        assert controller._prefetch_target(short_cold, 0) == 1

    def test_prefetch_walks_by_waste_ratio(self):
        controller, db = make_controller()
        # 90 scans each spanning several tables: prefetch can pay.
        scanning = dict(
            scan_share=0.9, scan_bytes=90 * 4 * db.options.target_file_size_base
        )
        assert controller._prefetch_target(stationary(**scanning), 0) == 1
        wasteful = stationary(prefetch_hits=1, prefetch_waste=9, **scanning)
        assert controller._prefetch_target(wasteful, 3) == 2
        clean = stationary(prefetch_hits=9, prefetch_waste=1, **scanning)
        assert controller._prefetch_target(clean, 3) == 4
        assert (
            controller._prefetch_target(
                clean, controller.config.max_prefetch_depth
            )
            == controller.config.max_prefetch_depth
        )

    def test_readahead_tracks_scan_footprint(self):
        controller, _ = make_controller()
        ladder = controller.config.readahead_ladder
        # No scan signal: hold the current setting rather than churn.
        assert controller._readahead_target(stationary(), 64 << 10) == 64 << 10
        # Tiny scans: every speculative byte beyond the result is waste.
        tiny = stationary(scan_share=0.9, scan_bytes=90 * 512)
        assert controller._readahead_target(tiny, 64 << 10) == 0
        # Short scans get a footprint-matched small rung, not all-or-nothing:
        # a ~5.5 KiB scan wants its blocks coalesced into one ~8 KiB read.
        short = stationary(scan_share=0.9, scan_bytes=90 * 5632)
        assert controller._readahead_target(short, 64 << 10) == 8 << 10
        # Long scans: the smallest rung covering the average footprint.
        long_scans = stationary(scan_share=0.9, scan_bytes=90 * (100 << 10))
        assert controller._readahead_target(long_scans, 0) == 128 << 10
        # An expensive cloud round trip rounds one rung up: fetch more
        # per request when each request costs a full RTT.
        slow = stationary(
            scan_share=0.9,
            scan_bytes=90 * (100 << 10),
            cloud_ops=10,
            cloud_seconds=1.0,
        )
        assert controller._readahead_target(slow, 0) == 256 << 10
        assert ladder[0] == 4 << 10  # bottom rung bounds the "tiny" cutoff

    def test_compaction_readahead_requires_writes_and_cloud(self):
        controller, _ = make_controller()
        target = controller.config.compaction_readahead_target
        busy = stationary(write_share=0.5, cloud_ops=5, level_bytes=(0, 1, 1))
        assert controller._compaction_readahead_target(busy, 0) == target
        read_only = stationary(write_share=0.0, cloud_ops=5)
        assert controller._compaction_readahead_target(read_only, 0) == 0
        local_only = stationary(write_share=0.5, cloud_ops=0)
        assert controller._compaction_readahead_target(local_only, 0) == 0

    def test_compaction_readahead_write_share_hysteresis(self):
        # Engage at the floor; once engaged, release only below floor/2.
        # A workload hovering right at the floor (a 5%-insert YCSB phase)
        # must not flip the knob on alternating windows.
        controller, _ = make_controller()
        target = controller.config.compaction_readahead_target
        floor = controller.config.write_share_floor
        at_floor = stationary(write_share=floor, cloud_ops=5, level_bytes=(0, 1, 1))
        just_below = stationary(
            write_share=floor * 0.8, cloud_ops=5, level_bytes=(0, 1, 1)
        )
        way_below = stationary(
            write_share=floor * 0.4, cloud_ops=5, level_bytes=(0, 1, 1)
        )
        assert controller._compaction_readahead_target(at_floor, 0) == target
        assert controller._compaction_readahead_target(just_below, 0) == 0
        assert controller._compaction_readahead_target(just_below, target) == target
        assert controller._compaction_readahead_target(way_below, target) == 0

    def test_compaction_readahead_uses_cloud_level_when_known(self):
        controller, _ = make_controller(cloud_level=2)
        shallow = stationary(write_share=0.5, level_bytes=(1, 1))
        deep = stationary(write_share=0.5, level_bytes=(1, 1, 1))
        assert controller._compaction_readahead_target(shallow, 0) == 0
        assert controller._compaction_readahead_target(deep, 0) > 0

    def test_subcompactions_track_compaction_width(self):
        controller, db = make_controller()
        db.options.target_file_size_base = 1 << 20
        wide = stationary(
            write_share=0.5, compactions=2, compaction_bytes_read=12 << 20
        )
        assert controller._subcompactions_target(wide, 1) == 6
        assert controller._subcompactions_target(stationary(), 3) == 3

    def test_blob_threshold_tracks_value_byte_mass(self):
        controller, _ = make_controller()
        # 90% of written bytes are 4 KiB values: divert at the 4 KiB bound.
        hist = ((256, 1000), (4096, 9000))
        stats = stationary(write_share=1.0, write_bytes=10_000, value_hist=hist)
        assert controller._blob_threshold_target(stats, 64 << 10) == 4096
        # Bytes dominated by small values: the floor keeps tiny values inline.
        small = stationary(
            write_share=1.0, write_bytes=10_000, value_hist=((64, 10_000),)
        )
        assert (
            controller._blob_threshold_target(small, 4096)
            == controller.config.blob_threshold_floor
        )


class TestControllerMechanics:
    def test_record_op_evaluates_on_interval_and_charges_cpu(self):
        controller, _ = make_controller(TuningConfig(interval_ops=5))
        for _ in range(4):
            controller.record_op("get")
        assert not controller.trajectory
        controller.record_op("get")
        assert len(controller.trajectory) == 1
        assert controller.tracer.totals.as_dict().get("cpu", 0.0) > 0
        assert controller.clock.now > 0

    def test_trajectory_digest_is_stable_and_input_sensitive(self):
        def run(kinds):
            controller, db = make_controller(TuningConfig(interval_ops=3))
            # A skewed tree: the filter rule's target depends on the
            # window's point-read share, so different mixes must leave
            # different trajectories.
            db.levels = [(0, 1, 1 << 20), (2, 4, 100 << 20)]
            for kind in kinds:
                controller.record_op(kind, 100)
            return controller.trajectory_digest()

        ops = ["put", "get", "scan"] * 4
        assert run(ops) == run(ops)
        assert run(ops) != run(["get"] * 12)

    def test_describe_and_knobs_render(self):
        controller, _ = make_controller()
        knobs = controller.knobs()
        assert knobs["filter_allocation"].startswith("uniform:")
        assert "tune:" in controller.describe()
