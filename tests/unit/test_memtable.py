"""Unit tests for the memtable."""

from repro.lsm.memtable import GetResult, MemTable
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE, make_internal_key, parse_internal_key


class TestMemTable:
    def test_empty(self):
        mt = MemTable()
        assert len(mt) == 0
        assert mt.get(b"k", 100).state == GetResult.ABSENT

    def test_put_get(self):
        mt = MemTable()
        mt.add(1, TYPE_VALUE, b"k", b"v")
        result = mt.get(b"k", 100)
        assert result.state == GetResult.FOUND
        assert result.value == b"v"

    def test_newest_wins(self):
        mt = MemTable()
        mt.add(1, TYPE_VALUE, b"k", b"old")
        mt.add(2, TYPE_VALUE, b"k", b"new")
        assert mt.get(b"k", 100).value == b"new"

    def test_snapshot_visibility(self):
        mt = MemTable()
        mt.add(1, TYPE_VALUE, b"k", b"v1")
        mt.add(5, TYPE_VALUE, b"k", b"v5")
        assert mt.get(b"k", 1).value == b"v1"
        assert mt.get(b"k", 4).value == b"v1"
        assert mt.get(b"k", 5).value == b"v5"
        assert mt.get(b"k", 0).state == GetResult.ABSENT

    def test_delete_marks_deleted(self):
        mt = MemTable()
        mt.add(1, TYPE_VALUE, b"k", b"v")
        mt.add(2, TYPE_DELETION, b"k", b"")
        assert mt.get(b"k", 100).state == GetResult.DELETED
        assert mt.get(b"k", 1).state == GetResult.FOUND

    def test_absent_vs_other_keys(self):
        mt = MemTable()
        mt.add(1, TYPE_VALUE, b"apple", b"v")
        mt.add(2, TYPE_VALUE, b"cherry", b"v")
        assert mt.get(b"banana", 100).state == GetResult.ABSENT

    def test_iteration_order(self):
        mt = MemTable()
        mt.add(3, TYPE_VALUE, b"b", b"v3")
        mt.add(1, TYPE_VALUE, b"a", b"v1")
        mt.add(2, TYPE_VALUE, b"b", b"v2")
        entries = list(mt)
        user_keys = [parse_internal_key(ik).user_key for ik, _ in entries]
        seqs = [parse_internal_key(ik).sequence for ik, _ in entries]
        assert user_keys == [b"a", b"b", b"b"]
        assert seqs == [1, 3, 2]  # newest first within a user key

    def test_seek(self):
        mt = MemTable()
        for i, key in enumerate([b"a", b"c", b"e"]):
            mt.add(i + 1, TYPE_VALUE, key, b"v")
        target = make_internal_key(b"b", 2**50, TYPE_VALUE)
        got = [parse_internal_key(ik).user_key for ik, _ in mt.seek(target)]
        assert got == [b"c", b"e"]

    def test_memory_usage_grows(self):
        mt = MemTable()
        assert mt.approximate_memory_usage() == 0
        mt.add(1, TYPE_VALUE, b"key", b"x" * 1000)
        assert mt.approximate_memory_usage() > 1000

    def test_value_with_embedded_ikey_lookalike(self):
        # Values are opaque; bytes that resemble keys must not confuse it.
        mt = MemTable()
        evil = make_internal_key(b"other", 99, TYPE_VALUE)
        mt.add(1, TYPE_VALUE, b"k", evil)
        assert mt.get(b"k", 100).value == evil
        assert mt.get(b"other", 100).state == GetResult.ABSENT
