"""CLI, reporter, and baseline tests for ``python -m repro.lint``."""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.errors import CorruptionError
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.finding import Finding
from repro.lint.report import render_json, render_text


CLEAN_SRC = "def f(clock):\n    clock.advance(1.0)\n"
DIRTY_SRC = "import time\nt = time.time()\n"


@pytest.fixture
def tree(tmp_path):
    def build(files):
        root = tmp_path / "repro"
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return root

    return build


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        root = tree({"bench/x.py": CLEAN_SRC})
        assert main([str(root), "--no-baseline"]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        root = tree({"bench/x.py": DIRTY_SRC})
        assert main([str(root), "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RL001" in out and "bench/x.py:2" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        root = tree({"bench/x.py": CLEAN_SRC})
        assert main([str(root), "--rules", "RL999"]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_rules_filter_applies(self, tree):
        root = tree({"bench/x.py": DIRTY_SRC})
        assert main([str(root), "--no-baseline", "--rules", "RL005"]) == EXIT_CLEAN
        assert main([str(root), "--no-baseline", "--rules", "RL001"]) == EXIT_FINDINGS

    def test_list_rules_catalogs_every_rule(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out


class TestJsonFormat:
    def test_json_output_is_machine_readable(self, tree, capsys):
        root = tree({"bench/x.py": DIRTY_SRC})
        assert main([str(root), "--no-baseline", "--format", "json"]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert doc["counts"] == {"RL001": 1}
        (finding,) = doc["findings"]
        assert finding["rule"] == "RL001"
        assert finding["path"].endswith("bench/x.py")
        assert finding["line"] == 2

    def test_json_clean(self, tree, capsys):
        root = tree({"bench/x.py": CLEAN_SRC})
        assert main([str(root), "--no-baseline", "--format", "json"]) == EXIT_CLEAN
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True and doc["findings"] == []


class TestBaselineFlow:
    def test_write_then_gate_passes(self, tree, tmp_path, capsys):
        root = tree({"bench/x.py": DIRTY_SRC})
        baseline = tmp_path / "base.json"
        assert (
            main([str(root), "--baseline", str(baseline), "--write-baseline"])
            == EXIT_CLEAN
        )
        assert baseline.is_file()
        capsys.readouterr()
        # Grandfathered finding no longer fails the gate …
        assert main([str(root), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out
        # … but a new violation still does.
        (root / "bench" / "y.py").write_text(DIRTY_SRC, encoding="utf-8")
        assert main([str(root), "--baseline", str(baseline)]) == EXIT_FINDINGS

    def test_no_baseline_flag_ignores_file(self, tree, tmp_path):
        root = tree({"bench/x.py": DIRTY_SRC})
        baseline = tmp_path / "base.json"
        main([str(root), "--baseline", str(baseline), "--write-baseline"])
        assert main([str(root), "--baseline", str(baseline), "--no-baseline"]) == (
            EXIT_FINDINGS
        )

    def test_corrupt_baseline_exits_two(self, tree, tmp_path, capsys):
        root = tree({"bench/x.py": CLEAN_SRC})
        baseline = tmp_path / "base.json"
        baseline.write_text("{not json", encoding="utf-8")
        assert main([str(root), "--baseline", str(baseline)]) == EXIT_USAGE
        assert "baseline" in capsys.readouterr().err

    def test_load_rejects_bad_documents(self, tmp_path):
        path = tmp_path / "b.json"
        for bad in ('{"version": 3, "findings": {}}', '{"version": 2, "findings": []}',
                    '{"version": 2, "findings": {"fp": 0}}'):
            path.write_text(bad, encoding="utf-8")
            with pytest.raises(CorruptionError):
                load_baseline(path)

    def test_fingerprint_survives_line_drift(self, tmp_path):
        # Identical code on a different line keeps its fingerprint, so
        # unrelated edits above a baselined finding do not break the gate.
        a = Finding(rule="RL001", path="bench/x.py", line=2, col=4,
                    message="m", snippet="t = time.time()")
        b = Finding(rule="RL001", path="bench/x.py", line=40, col=4,
                    message="m", snippet="t = time.time()")
        assert a.fingerprint == b.fingerprint
        fresh, matched = apply_baseline([b], Counter({a.fingerprint: 1}))
        assert fresh == [] and matched == [b]

    def test_fingerprint_survives_message_rewording(self):
        # Version 2 drops the message from the basis: rewording a rule's
        # diagnostics must not churn committed baselines.
        a = Finding(rule="RL001", path="x.py", line=2, col=4,
                    message="old wording", snippet="t = time.time()")
        b = Finding(rule="RL001", path="x.py", line=2, col=4,
                    message="new wording", snippet="t = time.time()")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint_v1 != b.fingerprint_v1

    def test_budget_is_consumed_per_occurrence(self, tmp_path):
        f = Finding(rule="RL001", path="p.py", line=1, col=0,
                    message="m", snippet="s")
        fresh, matched = apply_baseline([f, f, f], Counter({f.fingerprint: 2}))
        assert len(matched) == 2 and len(fresh) == 1

    def test_write_baseline_round_trips(self, tmp_path):
        f = Finding(rule="RL002", path="p.py", line=3, col=0,
                    message="m", snippet="s")
        path = tmp_path / "b.json"
        write_baseline(path, [f, f])
        loaded = load_baseline(path)
        assert loaded.version == 2
        assert loaded.counts == Counter({f.fingerprint: 2})

    def test_version1_baseline_gates_and_migrates_in_place(self, tree, tmp_path):
        # A version-1 file still grandfathers its findings (matched through
        # the v1 fingerprint) and is rewritten as version 2 on first use.
        from repro.lint import lint_paths

        root = tree({"bench/x.py": DIRTY_SRC})
        (finding,) = lint_paths([root])
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(
                {"version": 1, "findings": {finding.fingerprint_v1: 1}}
            ),
            encoding="utf-8",
        )
        assert main([str(root), "--baseline", str(baseline)]) == EXIT_CLEAN
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert doc["version"] == 2
        assert doc["findings"] == {finding.fingerprint: 1}
        # The migrated file keeps gating.
        assert main([str(root), "--baseline", str(baseline)]) == EXIT_CLEAN


class TestReporters:
    FINDING = Finding(rule="RL005", path="lsm/x.py", line=1, col=0,
                      message="import os: banned", snippet="import os")

    def test_text_report_is_compiler_style(self):
        text = render_text([self.FINDING], baselined=0)
        assert "lsm/x.py:1:0: RL005 import os: banned" in text

    def test_text_report_clean(self):
        assert "clean" in render_text([], baselined=0)

    def test_json_report_counts(self):
        doc = json.loads(render_json([self.FINDING, self.FINDING], baselined=1))
        assert doc["counts"] == {"RL005": 2}
        assert doc["baselined"] == 1
