"""Two-phase engine tests: summary cache, parallel jobs, SARIF output,
and suppression edge cases."""

import json
from pathlib import Path

from repro.lint import LintConfig, lint_paths
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro.lint.engine import LintEngine
from repro.lint.finding import Finding
from repro.lint.report import render_sarif
from repro.lint.suppress import parse_suppressions

CLEAN_SRC = "def f(clock):\n    clock.advance(1.0)\n"
DIRTY_SRC = "import time\nt = time.time()\n"


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestSummaryCache:
    def test_warm_run_reanalyzes_only_changed_files(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "bench/a.py": CLEAN_SRC,
                "bench/b.py": DIRTY_SRC,
                "bench/c.py": CLEAN_SRC.replace("f(", "g("),
            },
        )
        cache = tmp_path / "cache"
        engine = LintEngine(cache_dir=cache)
        cold = engine.run([root])
        assert engine.stats == {"files": 3, "cache_hits": 0, "cache_misses": 3}

        warm = engine.run([root])
        assert engine.stats == {"files": 3, "cache_hits": 3, "cache_misses": 0}
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

        (root / "bench" / "a.py").write_text(DIRTY_SRC, encoding="utf-8")
        third = engine.run([root])
        assert engine.stats == {"files": 3, "cache_hits": 2, "cache_misses": 1}
        assert sorted(f.path for f in third) == ["bench/a.py", "bench/b.py"]

    def test_cached_findings_keep_suppressions(self, tmp_path):
        suppressed = "import time\nt = time.time()  # reprolint: ignore[RL001]\n"
        root = make_tree(tmp_path, {"bench/a.py": suppressed})
        cache = tmp_path / "cache"
        engine = LintEngine(cache_dir=cache)
        assert engine.run([root]) == []
        assert engine.run([root]) == []  # warm: suppression map from facts
        assert engine.stats["cache_hits"] == 1

    def test_config_change_invalidates_cache(self, tmp_path):
        root = make_tree(tmp_path, {"bench/a.py": CLEAN_SRC})
        cache = tmp_path / "cache"
        LintEngine(cache_dir=cache).run([root])
        engine = LintEngine(
            LintConfig(charge_window_after=7), cache_dir=cache
        )
        engine.run([root])
        assert engine.stats["cache_misses"] == 1

    def test_corrupt_cache_entry_is_reanalyzed(self, tmp_path):
        root = make_tree(tmp_path, {"bench/a.py": DIRTY_SRC})
        cache = tmp_path / "cache"
        engine = LintEngine(cache_dir=cache)
        cold = engine.run([root])
        for entry in cache.iterdir():
            entry.write_text("{not json", encoding="utf-8")
        again = engine.run([root])
        assert engine.stats["cache_misses"] == 1
        assert [f.to_dict() for f in again] == [f.to_dict() for f in cold]

    def test_parallel_jobs_match_serial(self, tmp_path):
        files = {f"bench/m{i}.py": DIRTY_SRC for i in range(4)}
        files["bench/ok.py"] = CLEAN_SRC
        root = make_tree(tmp_path, files)
        serial = LintEngine().run([root])
        parallel = LintEngine(jobs=2).run([root])
        assert [f.to_dict() for f in parallel] == [f.to_dict() for f in serial]


class TestSarif:
    FINDING = Finding(rule="RL005", path="lsm/x.py", line=3, col=2,
                      message="import os: banned", snippet="import os",
                      end_line=4)

    def test_document_shape(self):
        doc = json.loads(render_sarif([self.FINDING]))
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RL001" in rule_ids and "RL010" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RL005"
        assert result["level"] == "error"
        assert result["message"]["text"] == "import os: banned"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "lsm/x.py"
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] == 3
        assert location["region"]["endLine"] == 4
        assert result["partialFingerprints"] == {
            "reprolintFingerprint/v2": self.FINDING.fingerprint
        }

    def test_clean_run_has_empty_results(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []

    def test_cli_writes_sarif_to_output_file(self, tmp_path):
        root = make_tree(tmp_path, {"bench/x.py": DIRTY_SRC})
        out = tmp_path / "lint.sarif"
        code = main(
            [str(root), "--no-baseline", "--no-cache",
             "--format", "sarif", "--output", str(out)]
        )
        assert code == EXIT_FINDINGS
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["RL001"]


class TestSuppressionEdgeCases:
    def test_comment_suppression_propagates_past_decorators(self):
        lines = [
            "# reprolint: ignore[RL004] -- reason",
            "@functools.wraps(f)",
            "@some.other(deco)",
            "def g():",
            "    pass",
        ]
        suppressions = parse_suppressions(lines)
        # The comment covers itself, each decorator line, and the def.
        assert {1, 2, 3, 4} <= set(suppressions)
        assert all(suppressions[n] == frozenset({"RL004"}) for n in (1, 2, 3, 4))
        assert 5 not in suppressions

    def test_multiline_call_suppressed_by_trailing_comment(self, tmp_path):
        # The finding anchors on the call's first line, but the suppression
        # sits on its last line: the [line, end_line] span must match.
        source = (
            "import time\n"
            "t = time.time(\n"
            ")  # reprolint: ignore[RL001] -- wrapped call\n"
        )
        root = make_tree(tmp_path, {"bench/x.py": source})
        assert lint_paths([root]) == []

    def test_unknown_rule_in_suppression_warns_rl010(self, tmp_path):
        source = "x = 1  # reprolint: ignore[RL099]\n"
        root = make_tree(tmp_path, {"bench/x.py": source})
        findings = lint_paths([root])
        assert [f.rule for f in findings] == ["RL010"]
        assert "RL099" in findings[0].message

    def test_known_rule_suppression_does_not_warn(self, tmp_path):
        source = "import time\nt = time.time()  # reprolint: ignore[RL001]\n"
        root = make_tree(tmp_path, {"bench/x.py": source})
        assert lint_paths([root]) == []

    def test_bare_ignore_names_no_rules_and_never_warns(self, tmp_path):
        source = "import time\nt = time.time()  # reprolint: ignore\n"
        root = make_tree(tmp_path, {"bench/x.py": source})
        assert lint_paths([root]) == []

    def test_rl000_is_a_known_suppression_target(self, tmp_path):
        source = "x = 1  # reprolint: ignore[RL000]\n"
        root = make_tree(tmp_path, {"bench/x.py": source})
        assert lint_paths([root]) == []


class TestStatsFlag:
    def test_stats_go_to_stderr(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"bench/x.py": CLEAN_SRC})
        code = main([str(root), "--no-baseline", "--no-cache", "--stats"])
        assert code == EXIT_CLEAN
        err = capsys.readouterr().err
        assert "1 file(s)" in err and "1 analyzed" in err
