"""Integration tests for reverse scans and the properties API."""

import random

import pytest

from repro.bench.harness import HarnessKnobs, make_store
from repro.errors import InvalidArgumentError
from repro.lsm.db import DB
from repro.lsm.format import table_file_name
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import MAX_SEQUENCE, TYPE_VALUE, compare_internal, make_internal_key
from repro.workloads import dbbench
from repro.workloads.generator import make_key


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def db():
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", small_options())
    yield database
    database.close()


def fill(db, n=400):
    for i in range(n):
        db.put(f"key{i:05d}".encode(), f"v{i}".encode())


class TestReverseScan:
    def test_mirror_of_forward(self, db):
        fill(db)
        db.flush()
        fill(db, 50)  # overwrite a prefix, keep some in the memtable
        forward = list(db.scan())
        backward = list(db.scan_reverse())
        assert backward == forward[::-1]

    def test_range_bounds(self, db):
        fill(db, 100)
        got = list(db.scan_reverse(b"key00010", b"key00020"))
        assert [k for k, _ in got] == [
            f"key{i:05d}".encode() for i in range(19, 9, -1)
        ]

    def test_tombstones_hidden(self, db):
        fill(db, 50)
        db.flush()
        db.delete(b"key00025")
        keys = [k for k, _ in db.scan_reverse()]
        assert b"key00025" not in keys
        assert len(keys) == 49

    def test_newest_value_wins(self, db):
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        assert list(db.scan_reverse()) == [(b"k", b"new")]

    def test_snapshot_respected(self, db):
        db.put(b"a", b"1")
        snap = db.snapshot()
        db.put(b"a", b"2")
        db.put(b"b", b"3")
        assert list(db.scan_reverse(snapshot=snap)) == [(b"a", b"1")]
        db.release_snapshot(snap)

    def test_across_compacted_levels(self, db):
        for i in range(3000):
            db.put(f"key{i % 600:05d}".encode(), f"gen{i}".encode())
        db.compact_range()
        forward = list(db.scan())
        assert list(db.scan_reverse()) == forward[::-1]

    def test_empty_db(self, db):
        assert list(db.scan_reverse()) == []

    def test_random_ops_mirror_property(self, db):
        rng = random.Random(3)
        for step in range(1500):
            k = f"key{rng.randrange(300):04d}".encode()
            if rng.random() < 0.7:
                db.put(k, f"v{step}".encode())
            else:
                db.delete(k)
        assert list(db.scan_reverse()) == list(db.scan())[::-1]

    def test_store_facade_reverse(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(1000):
            store.put(f"key{i:05d}".encode(), b"v")
        got = store.scan_reverse(limit=5)
        assert [k for k, _ in got] == [
            f"key{i:05d}".encode() for i in range(999, 994, -1)
        ]


class TestReverseSeekBlockReads:
    """A bounded reverse scan must not fetch blocks above its bound.

    Before ``TableReader.seek_reverse``, ``scan_reverse`` walked every
    table's whole tail through ``reverse_iter`` regardless of ``end`` —
    this pins the fix with an exact per-block assertion.
    """

    def _open_counting_db(self):
        fetches = []

        def wrapper(name, file, next_loader):
            def load(n, handle, kind):
                if kind == "data":
                    fetches.append((n, handle.offset))
                return next_loader(n, handle, kind)

            return load

        database = DB.open(
            LocalEnv(LocalDevice(SimClock())), "db/", small_options(),
            loader_wrapper=wrapper,
        )
        return database, fetches

    def test_tight_end_reverse_scan_fetches_no_out_of_range_blocks(self):
        db, fetches = self._open_counting_db()
        try:
            for i in range(2000):
                db.put(f"key{i:05d}".encode(), f"value{i:05d}".encode() * 4)
            db.compact_range()
            refs = {}
            for _level, meta in db.versions.current.all_files():
                reader = db.table_cache.get_reader(meta.number)
                refs[table_file_name("db/", meta.number)] = reader.block_refs()

            fetches.clear()
            full = list(db.scan_reverse())
            assert len(full) == 2000
            full_fetches = len(fetches)

            fetches.clear()
            end = b"key00012"
            got = list(db.scan_reverse(None, end))
            assert [k for k, _ in got] == [
                f"key{i:05d}".encode() for i in range(11, -1, -1)
            ]
            bound = make_internal_key(end, MAX_SEQUENCE, TYPE_VALUE)
            for name, offset in fetches:
                blocks = refs[name]
                j = next(
                    i for i, (_k, h) in enumerate(blocks) if h.offset == offset
                )
                # Block j holds keys strictly above block j-1's last key, so
                # fetching it is justified only if that last key is below the
                # bound; otherwise the whole block is out of range.
                if j > 0:
                    assert compare_internal(blocks[j - 1][0], bound) < 0, (
                        f"{name} fetched out-of-range block at {offset}"
                    )
            # And the bounded scan reads a small fraction of the tail walk.
            assert len(fetches) * 10 <= full_fetches
        finally:
            db.close()

    def test_tight_bound_memtable_reverse_scan(self):
        db, _fetches = self._open_counting_db()
        try:
            for i in range(100):
                db.put(f"key{i:05d}".encode(), b"v")
            got = list(db.scan_reverse(b"key00003", b"key00007"))
            assert [k for k, _ in got] == [
                f"key{i:05d}".encode() for i in range(6, 2, -1)
            ]
        finally:
            db.close()


def cold_cloud_store(depth, records=600):
    """RocksMash with everything below L0 cloud-resident and caches cold."""
    store = make_store(
        "rocksmash",
        HarnessKnobs(
            scan_prefetch_depth=depth,
            cloud_level=1,
            block_cache_bytes=0,
            pcache_budget_bytes=4 << 10,
        ),
    )
    dbbench.fill_database(store, records)
    store.db.table_cache.clear()
    return store


class TestReverseScanPrefetchPipeline:
    """``scan_reverse`` consults ``scan_pipeline_factory`` like ``scan``.

    The forward path gained the prefetch pipeline in an earlier PR but the
    reverse path silently ignored the factory; these pin the wiring and
    the cold-cloud latency win it buys.
    """

    def test_reverse_results_identical_and_faster_with_pipeline(self):
        base = cold_cloud_store(depth=0)
        piped = cold_cloud_store(depth=2)

        t0 = base.clock.now
        expect = base.scan_reverse()
        base_elapsed = base.clock.now - t0

        t0 = piped.clock.now
        got = piped.scan_reverse()
        piped_elapsed = piped.clock.now - t0

        assert got == expect
        assert base.tracer.event_count("seek_fanout") == 0
        assert piped.tracer.event_count("seek_fanout") == 1
        assert piped_elapsed < base_elapsed

    def test_bounded_reverse_scan_waste_stays_bounded(self):
        store = cold_cloud_store(depth=4)
        got = store.scan_reverse(None, make_key(40))
        assert len(got) == 40
        waste = store.tracer.event_count("prefetch_waste")
        issued = store.tracer.event_count("prefetch_issue")
        hits = store.tracer.event_count("prefetch_hit")
        assert waste <= 4
        assert hits + waste == issued


class TestProperties:
    def test_int_properties(self, db):
        fill(db, 300)
        db.flush()
        assert db.get_property("repro.num-files-at-level0") >= 1
        assert db.get_property("repro.total-sst-bytes") > 0
        assert db.get_property("repro.num-entries-memtable") == 0
        assert db.get_property("repro.last-sequence") == 300
        assert db.get_property("repro.manifest-bytes") > 0
        snap = db.snapshot()
        assert db.get_property("repro.num-snapshots") == 1
        db.release_snapshot(snap)

    def test_string_properties(self, db):
        fill(db, 300)
        db.flush()
        stats = db.get_property("repro.compaction-stats")
        assert "flushes=" in stats
        levels = db.get_property("repro.levels")
        assert levels.startswith("level")

    def test_memtable_properties(self, db):
        db.put(b"k", b"v" * 100)
        assert db.get_property("repro.num-entries-memtable") == 1
        assert db.get_property("repro.approximate-memory-usage") > 100

    def test_unknown_property_raises(self, db):
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.nonsense")
        with pytest.raises(InvalidArgumentError):
            db.get_property("rocksdb.stats")
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.num-files-at-levelX")
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.num-files-at-level99")
