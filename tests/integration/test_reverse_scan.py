"""Integration tests for reverse scans and the properties API."""

import random

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def db():
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", small_options())
    yield database
    database.close()


def fill(db, n=400):
    for i in range(n):
        db.put(f"key{i:05d}".encode(), f"v{i}".encode())


class TestReverseScan:
    def test_mirror_of_forward(self, db):
        fill(db)
        db.flush()
        fill(db, 50)  # overwrite a prefix, keep some in the memtable
        forward = list(db.scan())
        backward = list(db.scan_reverse())
        assert backward == forward[::-1]

    def test_range_bounds(self, db):
        fill(db, 100)
        got = list(db.scan_reverse(b"key00010", b"key00020"))
        assert [k for k, _ in got] == [
            f"key{i:05d}".encode() for i in range(19, 9, -1)
        ]

    def test_tombstones_hidden(self, db):
        fill(db, 50)
        db.flush()
        db.delete(b"key00025")
        keys = [k for k, _ in db.scan_reverse()]
        assert b"key00025" not in keys
        assert len(keys) == 49

    def test_newest_value_wins(self, db):
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        assert list(db.scan_reverse()) == [(b"k", b"new")]

    def test_snapshot_respected(self, db):
        db.put(b"a", b"1")
        snap = db.snapshot()
        db.put(b"a", b"2")
        db.put(b"b", b"3")
        assert list(db.scan_reverse(snapshot=snap)) == [(b"a", b"1")]
        db.release_snapshot(snap)

    def test_across_compacted_levels(self, db):
        for i in range(3000):
            db.put(f"key{i % 600:05d}".encode(), f"gen{i}".encode())
        db.compact_range()
        forward = list(db.scan())
        assert list(db.scan_reverse()) == forward[::-1]

    def test_empty_db(self, db):
        assert list(db.scan_reverse()) == []

    def test_random_ops_mirror_property(self, db):
        rng = random.Random(3)
        for step in range(1500):
            k = f"key{rng.randrange(300):04d}".encode()
            if rng.random() < 0.7:
                db.put(k, f"v{step}".encode())
            else:
                db.delete(k)
        assert list(db.scan_reverse()) == list(db.scan())[::-1]

    def test_store_facade_reverse(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(1000):
            store.put(f"key{i:05d}".encode(), b"v")
        got = store.scan_reverse(limit=5)
        assert [k for k, _ in got] == [
            f"key{i:05d}".encode() for i in range(999, 994, -1)
        ]


class TestProperties:
    def test_int_properties(self, db):
        fill(db, 300)
        db.flush()
        assert db.get_property("repro.num-files-at-level0") >= 1
        assert db.get_property("repro.total-sst-bytes") > 0
        assert db.get_property("repro.num-entries-memtable") == 0
        assert db.get_property("repro.last-sequence") == 300
        assert db.get_property("repro.manifest-bytes") > 0
        snap = db.snapshot()
        assert db.get_property("repro.num-snapshots") == 1
        db.release_snapshot(snap)

    def test_string_properties(self, db):
        fill(db, 300)
        db.flush()
        stats = db.get_property("repro.compaction-stats")
        assert "flushes=" in stats
        levels = db.get_property("repro.levels")
        assert levels.startswith("level")

    def test_memtable_properties(self, db):
        db.put(b"k", b"v" * 100)
        assert db.get_property("repro.num-entries-memtable") == 1
        assert db.get_property("repro.approximate-memory-usage") > 100

    def test_unknown_property_raises(self, db):
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.nonsense")
        with pytest.raises(InvalidArgumentError):
            db.get_property("rocksdb.stats")
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.num-files-at-levelX")
        with pytest.raises(InvalidArgumentError):
            db.get_property("repro.num-files-at-level99")
