"""Regression tests for the two narrowed except sites.

Both sites used to catch ``Exception``, which would have swallowed a
:class:`CrashPointFired` raised from below them — silently turning an
injected crash into a cache decision (store) or a truncated recovery scan
(pcache). These tests fire a crash point *through* each site and assert it
propagates; reprolint rule RL003 guards the same contract statically.
"""

import pytest

from repro.errors import NotFoundError
from repro.mash.pcache import PCacheConfig, PersistentCache
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.sim.failure import CrashPointFired, crash_points
from repro.storage.local import LocalDevice


@pytest.fixture
def store():
    yield RocksMashStore.create(StoreConfig().small())


class TestIsCloudFileSite:
    """mash/store.py: tier probing must not eat a crash point."""

    def test_crash_point_fired_propagates(self, store, monkeypatch):
        def exploding_tier_of(name):
            raise CrashPointFired("test.tier_probe")

        monkeypatch.setattr(store.env, "tier_of", exploding_tier_of)
        with pytest.raises(CrashPointFired):
            store._is_cloud_file("000001.sst")

    def test_missing_file_is_not_cloud(self, store):
        assert store._is_cloud_file("no-such-file.sst") is False

    def test_crash_point_fired_propagates_through_read_path(
        self, store, monkeypatch
    ):
        # End to end: a crash point firing under a read must surface to the
        # caller, not degrade into a "treat as local" cache decision.
        store.put(b"k", b"v" * 64)
        store.flush()

        original = type(store.env).tier_of

        def armed_tier_of(env, name):
            raise CrashPointFired("test.read_probe")

        monkeypatch.setattr(type(store.env), "tier_of", armed_tier_of)
        try:
            with pytest.raises(CrashPointFired):
                store._is_cloud_file("000001.sst")
        finally:
            monkeypatch.setattr(type(store.env), "tier_of", original)


class TestPCacheRecoverySite:
    """mash/pcache.py: the slab-recovery loop must not eat a crash point."""

    def _device_with_slab(self):
        device = LocalDevice(SimClock())
        cache = PersistentCache.open(device)
        cache.put_meta("t1.sst", "index", b"index-bytes")
        cache.put_data("t1.sst", 0, b"block-bytes", force=True)
        cache.close()
        return device

    def test_crash_point_fired_propagates_from_recovery(self, monkeypatch):
        device = self._device_with_slab()

        import repro.mash.pcache as pcache_mod

        def exploding_verify(data, stored):
            raise CrashPointFired("test.recover_verify")

        monkeypatch.setattr(pcache_mod, "verify_masked_crc32", exploding_verify)
        with pytest.raises(CrashPointFired):
            PersistentCache.open(device)

    def test_crash_point_in_varint_decode_propagates(self, monkeypatch):
        device = self._device_with_slab()

        import repro.mash.pcache as pcache_mod

        def exploding_decode(buf, offset=0):
            raise CrashPointFired("test.recover_decode")

        monkeypatch.setattr(pcache_mod, "decode_varint", exploding_decode)
        with pytest.raises(CrashPointFired):
            PersistentCache.open(device)

    def test_garbage_tail_still_recovers_cleanly(self):
        # The narrowed handler still does its real job: a torn/garbage tail
        # ends the scan at the last valid record instead of raising.
        device = self._device_with_slab()
        slab = PCacheConfig().prefix + PersistentCache.SLAB
        device.append(slab, b"\x01\xff\xff\xff\xff\xff\xff\xff")
        device.sync(slab)
        cache = PersistentCache.open(device)
        assert cache.get_meta("t1.sst", "index") == b"index-bytes"
        assert cache.get_data("t1.sst", 0) == b"block-bytes"

    def test_registry_untouched_by_regression_fixtures(self):
        # Sanity: these tests never leave a site armed for later tests.
        assert crash_points.armed is None
