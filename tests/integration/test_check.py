"""Integration tests for the offline consistency checker."""

import pytest

from repro.lsm.check import check_db
from repro.lsm.db import DB
from repro.lsm.format import table_file_name
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


def build_db(env, n=2000):
    db = DB.open(env, "db/", small_options())
    for i in range(n):
        db.put(f"k{i:05d}".encode(), b"x" * 60)
    db.flush()
    db.close()


class TestCleanDB:
    def test_healthy_db_passes(self, env):
        build_db(env)
        report = check_db(env, "db/", small_options())
        assert report.ok, report.errors
        assert report.tables_checked > 0
        assert report.entries_checked >= 2000
        assert "OK" in report.summary()

    def test_db_after_crash_passes_with_warnings_at_most(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(500):
            db.put(f"k{i:04d}".encode(), b"v" * 40)
        db.put(b"unsynced", b"v", sync=False)
        env.device.crash()
        report = check_db(env, "db/", small_options())
        assert report.ok, report.errors

    def test_rocksmash_store_checks_clean(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(2000):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.close()
        report = check_db(store.env, "db/", store.config.options)
        assert report.ok, report.errors
        assert report.wal_files_checked >= 1  # xlog shards scanned


class TestCorruptionDetected:
    def _corrupt_live_table(self, env, flip_at=None):
        db = DB.open(env, "db/", small_options())
        for i in range(500):
            db.put(f"k{i:04d}".encode(), b"v" * 40)
        db.flush()
        meta = next(m for _, m in db.versions.current.all_files())
        name = table_file_name("db/", meta.number)
        db.close()
        data = bytearray(env.read_file(name))
        pos = flip_at if flip_at is not None else len(data) // 3
        data[pos] ^= 0xFF
        env.delete_file(name)
        env.write_file(name, bytes(data))
        return name

    def test_flipped_block_byte_detected(self, env):
        name = self._corrupt_live_table(env)
        report = check_db(env, "db/", small_options())
        assert not report.ok
        assert any(name in e for e in report.errors)

    def test_missing_live_table_detected(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(500):
            db.put(f"k{i:04d}".encode(), b"v" * 40)
        db.flush()
        meta = next(m for _, m in db.versions.current.all_files())
        name = table_file_name("db/", meta.number)
        db.close()
        env.delete_file(name)
        report = check_db(env, "db/", small_options())
        assert not report.ok
        assert any("missing" in e for e in report.errors)

    def test_size_mismatch_detected(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(500):
            db.put(f"k{i:04d}".encode(), b"v" * 40)
        db.flush()
        meta = next(m for _, m in db.versions.current.all_files())
        name = table_file_name("db/", meta.number)
        db.close()
        # Rebuild a *valid* but different (smaller) table at the same name.
        data = env.read_file(name)
        from repro.lsm.table_builder import TableBuilder
        from repro.util.encoding import TYPE_VALUE, make_internal_key

        env.delete_file(name)
        builder = TableBuilder(small_options(), env.new_writable_file(name))
        builder.add(make_internal_key(b"zzz", 1, TYPE_VALUE), b"v")
        builder.finish()
        report = check_db(env, "db/", small_options())
        assert not report.ok

    def test_garbled_manifest_detected(self, env):
        build_db(env, 100)
        manifests = [n for n in env.list_files("db/") if "MANIFEST" in n]
        data = bytearray(env.read_file(manifests[0]))
        data[5] ^= 0xFF
        env.delete_file(manifests[0])
        env.write_file(manifests[0], bytes(data))
        report = check_db(env, "db/", small_options())
        assert not report.ok

    def test_orphan_reported_as_warning(self, env):
        build_db(env, 100)
        env.write_file(table_file_name("db/", 9999), b"junk")
        report = check_db(env, "db/", small_options())
        # Orphan junk is a warning, not an error (recovery would purge it)...
        assert table_file_name("db/", 9999) in report.orphans
        # ...and does not fail the check.
        assert report.ok, report.errors
