"""Integration tests for the three baseline systems."""

import random

import pytest

from repro.baselines import (
    CloudOnlyConfig,
    CloudOnlyStore,
    LocalOnlyConfig,
    LocalOnlyStore,
    RocksDBCloudConfig,
    RocksDBCloudStore,
)
from repro.mash.store import RocksMashStore, StoreConfig
from repro.storage.env import CLOUD, LOCAL


def make_all_stores():
    return [
        LocalOnlyStore.create(LocalOnlyConfig().small()),
        CloudOnlyStore.create(CloudOnlyConfig().small()),
        RocksDBCloudStore.create(RocksDBCloudConfig().small()),
        RocksMashStore.create(StoreConfig().small()),
    ]


class TestUniformCorrectness:
    """Every system variant must implement identical KV semantics."""

    @pytest.mark.parametrize("index", range(4))
    def test_model_equivalence(self, index):
        store = make_all_stores()[index]
        rng = random.Random(99)
        model = {}
        keys = [f"key{i:04d}".encode() for i in range(200)]
        for step in range(1500):
            key = rng.choice(keys)
            if rng.random() < 0.7:
                value = f"v{step}".encode() + b"z" * rng.randint(0, 80)
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        for key in keys:
            assert store.get(key) == model.get(key), (store.name, key)
        assert dict(store.scan()) == model, store.name

    @pytest.mark.parametrize("index", range(4))
    def test_clean_restart(self, index):
        store = make_all_stores()[index]
        for i in range(400):
            store.put(f"k{i:04d}".encode(), f"v{i}".encode())
        store2 = store.reopen()
        assert store2.get(b"k0000") == b"v0"
        assert store2.get(b"k0399") == b"v399"


class TestLocalOnly:
    def test_everything_on_local(self):
        store = LocalOnlyStore.create(LocalOnlyConfig().small())
        for i in range(1000):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        assert store.cloud_bytes() == 0
        assert store.local_bytes() > 0

    def test_crash_recovery_full_durability(self):
        store = LocalOnlyStore.create(LocalOnlyConfig().small())
        for i in range(200):
            store.put(f"k{i:04d}".encode(), b"v", sync=True)
        store2 = store.reopen(crash=True)
        for i in range(200):
            assert store2.get(f"k{i:04d}".encode()) == b"v"


class TestCloudOnly:
    def test_everything_on_cloud(self):
        store = CloudOnlyStore.create(CloudOnlyConfig().small())
        for i in range(500):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        assert store.cloud_bytes() > 0
        assert store.local_bytes() == 0

    def test_wal_on_object_storage_pays_quadratic_upload(self):
        """Durability on an immutable object store means re-uploading the
        whole WAL on every sync — the honest cost the paper's design avoids
        by keeping the WAL local."""
        store = CloudOnlyStore.create(CloudOnlyConfig().small())
        logical = 0
        for i in range(50):
            store.put(f"k{i:03d}".encode(), b"v" * 20, sync=True)
            logical += 24 + 20
        uploaded = store.counters.get("cloud.put_bytes")
        assert uploaded > logical * 5  # ~n^2/2 vs n

    def test_synced_writes_survive_crash(self):
        store = CloudOnlyStore.create(CloudOnlyConfig().small())
        store.put(b"flushed", b"v", sync=True)
        store.flush()
        store.put(b"memtable-only", b"v", sync=True)
        store2 = store.reopen(crash=True)
        assert store2.get(b"flushed") == b"v"
        assert store2.get(b"memtable-only") == b"v"

    def test_reads_pay_cloud_round_trips(self):
        store = CloudOnlyStore.create(CloudOnlyConfig().small())
        for i in range(500):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.flush()
        store.counters.reset()
        store.get(b"k00042")
        assert store.counters.get("cloud.get_ops") > 0


class TestRocksDBCloud:
    def test_ssts_on_cloud_wal_local(self):
        store = RocksDBCloudStore.create(RocksDBCloudConfig().small())
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.flush()
        names = store.env.list_files("db/")
        for name in names:
            tier = store.env.tier_of(name)
            if name.endswith(".sst"):
                assert tier == CLOUD, name
            else:
                assert tier == LOCAL, name

    def test_file_cache_serves_repeat_reads(self):
        import dataclasses

        config = RocksDBCloudConfig().small()
        # Disable the DRAM block cache so reads exercise the file cache.
        config = dataclasses.replace(
            config, options=dataclasses.replace(config.options, block_cache_bytes=0)
        )
        store = RocksDBCloudStore.create(config)
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.flush()
        for _ in range(store.file_cache.admit_threshold):
            store.get(b"k00042")  # cold reads, then admission
        assert store.file_cache.fills > 0
        fills_before = store.file_cache.fills
        gets_before = store.counters.get("cloud.get_ops")
        store.get(b"k00042")
        assert store.file_cache.fills == fills_before
        assert store.counters.get("cloud.get_ops") == gets_before

    def test_cold_reads_do_not_fill_file_cache(self):
        import dataclasses

        config = RocksDBCloudConfig().small()
        config = dataclasses.replace(
            config, options=dataclasses.replace(config.options, block_cache_bytes=0)
        )
        store = RocksDBCloudStore.create(config)
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.flush()
        fills_after_load = store.file_cache.fills  # compactions may fill
        store.get(b"k00042")  # single read: below the admission threshold
        assert store.file_cache.fills == fills_after_load

    def test_file_cache_budget_respected(self):
        config = RocksDBCloudConfig().small()
        store = RocksDBCloudStore.create(config)
        for i in range(3000):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        for _ in range(4):  # repeat so files pass the admission threshold
            for i in range(0, 3000, 17):
                store.get(f"k{i:05d}".encode())
        assert store.file_cache.fills > 0
        assert store.file_cache.used_bytes <= config.file_cache_budget_bytes

    def test_wal_durability_preserved(self):
        """Unlike cloud-only, the local WAL survives a crash."""
        store = RocksDBCloudStore.create(RocksDBCloudConfig().small())
        store.put(b"k", b"v", sync=True)
        store2 = store.reopen(crash=True)
        assert store2.get(b"k") == b"v"

    def test_file_cache_survives_restart(self):
        import dataclasses

        config = RocksDBCloudConfig().small()
        config = dataclasses.replace(
            config, options=dataclasses.replace(config.options, block_cache_bytes=0)
        )
        store = RocksDBCloudStore.create(config)
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 60)
        store.flush()
        for _ in range(store.file_cache.admit_threshold + 1):
            store.get(b"k00042")
        cached = store.file_cache.used_bytes
        assert cached > 0
        store2 = store.reopen()
        assert store2.file_cache.used_bytes == cached


class TestRelativePerformance:
    """The headline shape: local > mash > rocksdb-cloud > cloud-only."""

    def test_write_path_ordering(self):
        times = {}
        for store in make_all_stores():
            start = store.clock.now
            for i in range(800):
                store.put(f"k{i:05d}".encode(), b"v" * 60)
            times[store.name] = store.clock.now - start
        assert times["local-only"] < times["rocksmash"]
        assert times["rocksmash"] < times["rocksdb-cloud"]
        assert times["rocksdb-cloud"] < times["cloud-only"]

    def test_read_path_ordering(self):
        rng = random.Random(5)
        times = {}
        for store in make_all_stores():
            for i in range(1500):
                store.put(f"k{i:05d}".encode(), b"v" * 60)
            store.flush()
            start = store.clock.now
            for _ in range(300):
                store.get(f"k{rng.randint(0, 1499):05d}".encode())
            times[store.name] = store.clock.now - start
        assert times["local-only"] <= times["rocksmash"] * 1.5
        assert times["rocksmash"] < times["cloud-only"]
