"""Integration tests for batched reads (multi_get)."""

import dataclasses

import pytest

from repro.baselines import LocalOnlyConfig, LocalOnlyStore
from repro.mash.store import RocksMashStore, StoreConfig


def mash_store(parallelism=8):
    config = dataclasses.replace(
        StoreConfig().small(), multi_get_parallelism=parallelism
    )
    return RocksMashStore.create(config)


def fill(store, n=3000):
    for i in range(n):
        store.put(f"key{i:06d}".encode(), f"value-{i}".encode())
    store.flush()


class TestCorrectness:
    def test_matches_individual_gets(self):
        store = mash_store()
        fill(store)
        keys = [f"key{i:06d}".encode() for i in range(0, 3000, 200)]
        keys.append(b"missing-key")
        batched = store.multi_get(keys)
        assert set(batched) == set(keys)
        for key in keys:
            assert batched[key] == store.get(key), key

    def test_snapshot_respected(self):
        store = mash_store()
        store.put(b"k", b"old")
        snap = store.snapshot()
        store.put(b"k", b"new")
        assert store.multi_get([b"k"], snapshot=snap)[b"k"] == b"old"
        assert store.multi_get([b"k"])[b"k"] == b"new"
        store.release_snapshot(snap)

    def test_empty_and_single(self):
        store = mash_store()
        store.put(b"k", b"v")
        assert store.multi_get([]) == {}
        assert store.multi_get([b"k"]) == {b"k": b"v"}

    def test_baseline_sequential_multi_get(self):
        store = LocalOnlyStore.create(LocalOnlyConfig().small())
        for i in range(100):
            store.put(f"k{i:03d}".encode(), b"v")
        got = store.multi_get([b"k000", b"k050", b"nope"])
        assert got == {b"k000": b"v", b"k050": b"v", b"nope": None}

    def test_clock_restored_after_batch(self):
        store = mash_store()
        fill(store, 500)
        store.multi_get([f"key{i:06d}".encode() for i in range(50)])
        assert store.local_device.clock is store.clock
        assert store.cloud_store.clock is store.clock
        # Normal operation continues fine.
        store.put(b"after", b"v")
        assert store.get(b"after") == b"v"


class TestParallelTiming:
    def _cold_batch_time(self, parallelism, batch=16):
        store = mash_store(parallelism)
        fill(store)
        # Pick keys spread across the keyspace so each needs its own block,
        # with caches cold for those blocks.
        keys = [f"key{i:06d}".encode() for i in range(0, 3000, 3000 // batch)][:batch]
        start = store.clock.now
        store.multi_get(keys)
        return store.clock.now - start

    def test_parallel_faster_than_sequential(self):
        sequential = self._cold_batch_time(1)
        parallel = self._cold_batch_time(8)
        assert parallel < sequential / 2

    def test_wider_waves_not_slower(self):
        p4 = self._cold_batch_time(4)
        p16 = self._cold_batch_time(16)
        assert p16 <= p4 * 1.05
