"""Integration tests for bulk ingestion (external-table style)."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def db():
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", small_options())
    yield database
    database.close()


def bulk(n, prefix="bulk", start=0):
    return [(f"{prefix}{i:06d}".encode(), f"v{i}".encode()) for i in range(start, start + n)]


class TestIngest:
    def test_basic(self, db):
        assert db.ingest(bulk(1000)) == 1000
        assert db.get(b"bulk000500") == b"v500"
        assert len(list(db.scan())) == 1000

    def test_lands_deep_when_no_overlap(self, db):
        db.ingest(bulk(1000))
        summary = db.level_summary()
        assert summary[0][0] >= 5  # deepest levels preferred

    def test_empty_noop(self, db):
        assert db.ingest([]) == 0

    def test_unsorted_rejected(self, db):
        with pytest.raises(InvalidArgumentError):
            db.ingest([(b"b", b"1"), (b"a", b"2")])
        with pytest.raises(InvalidArgumentError):
            db.ingest([(b"a", b"1"), (b"a", b"2")])

    def test_newer_writes_shadow_ingested(self, db):
        db.ingest(bulk(100))
        db.put(b"bulk000050", b"newer")
        assert db.get(b"bulk000050") == b"newer"
        db.compact_range()
        assert db.get(b"bulk000050") == b"newer"

    def test_ingest_shadows_older_writes(self, db):
        db.put(b"bulk000050", b"older")
        db.flush()
        db.ingest(bulk(100))
        assert db.get(b"bulk000050") == b"v50"

    def test_overlap_with_memtable_flushes_first(self, db):
        db.put(b"bulk000050", b"older-in-memtable")
        db.ingest(bulk(100))
        assert db.get(b"bulk000050") == b"v50"
        assert db.get(b"bulk000099") == b"v99"

    def test_survives_restart(self, db):
        db.ingest(bulk(500))
        env = db.env
        db.close()
        db2 = DB.open(env, "db/", small_options())
        assert db2.get(b"bulk000250") == b"v250"
        db2.close()

    def test_multiple_disjoint_ingests(self, db):
        db.ingest(bulk(300, prefix="aaa"))
        db.ingest(bulk(300, prefix="zzz"))
        assert len(list(db.scan())) == 600

    def test_consistency_check_clean_after_ingest(self, db):
        from repro.lsm.check import check_db

        db.ingest(bulk(500))
        db.close()
        report = check_db(db.env, "db/", small_options())
        assert report.ok, report.errors

    def test_store_level_ingest(self):
        from repro.mash.store import RocksMashStore, StoreConfig

        store = RocksMashStore.create(StoreConfig().small())
        store.db.ingest(bulk(2000))
        # Bulk-loaded data lands deep -> demoted to cloud by placement...
        store.put(b"trigger", b"x")
        store.flush()
        assert store.get(b"bulk001000") == b"v1000"
