"""Integration tests for the assembled RocksMash store."""

import random

import pytest

from repro.lsm.write_batch import WriteBatch
from repro.mash.layout import LayoutConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.mash.xwal import XWalConfig


@pytest.fixture
def store():
    s = RocksMashStore.create(StoreConfig().small())
    yield s


def fill(store, n, vlen=80, prefix="key"):
    for i in range(n):
        store.put(f"{prefix}{i:06d}".encode(), f"v{i}-".encode() + b"x" * vlen)


class TestCorrectness:
    def test_model_equivalence_random_ops(self, store):
        """The store must agree with a dict model under random operations."""
        rng = random.Random(1234)
        model: dict[bytes, bytes] = {}
        keyspace = [f"key{i:04d}".encode() for i in range(400)]
        for step in range(4000):
            key = rng.choice(keyspace)
            action = rng.random()
            if action < 0.65:
                value = f"v{step}".encode() + b"p" * rng.randint(0, 120)
                store.put(key, value)
                model[key] = value
            elif action < 0.85:
                store.delete(key)
                model.pop(key, None)
            else:
                assert store.get(key) == model.get(key), (step, key)
        for key in keyspace:
            assert store.get(key) == model.get(key)
        # Scan agrees too.
        assert dict(store.scan()) == model

    def test_scan_range_after_tiering(self, store):
        fill(store, 3000)
        got = store.scan(b"key001000", b"key001050")
        assert [k for k, _ in got] == [f"key{i:06d}".encode() for i in range(1000, 1050)]

    def test_snapshot_across_demotion(self, store):
        fill(store, 1500)
        snap = store.snapshot()
        for i in range(1500):
            store.put(f"key{i:06d}".encode(), b"NEW")
        store.compact_range()
        assert store.get(b"key000700", snapshot=snap) != b"NEW"
        assert store.get(b"key000700") == b"NEW"
        store.release_snapshot(snap)

    def test_write_batch(self, store):
        batch = WriteBatch().put(b"a", b"1").put(b"b", b"2").delete(b"a")
        store.write(batch)
        assert store.get(b"a") is None
        assert store.get(b"b") == b"2"


class TestRestartAndCrash:
    def test_clean_restart(self, store):
        fill(store, 2000)
        store2 = store.reopen()
        for i in range(0, 2000, 111):
            assert store2.get(f"key{i:06d}".encode()) is not None

    def test_crash_preserves_synced_writes(self, store):
        fill(store, 500)
        store.put(b"last-write", b"synced", sync=True)
        store2 = store.reopen(crash=True)
        assert store2.get(b"last-write") == b"synced"
        assert store2.get(b"key000499") is not None

    def test_crash_unsynced_may_lose_only_tail(self, store):
        store.put(b"a", b"1", sync=True)
        store.put(b"b", b"2", sync=False)
        store2 = store.reopen(crash=True)
        assert store2.get(b"a") == b"1"
        # b may be lost (unsynced) but must not be corrupt.
        assert store2.get(b"b") in (None, b"2")

    def test_pcache_contents_survive_restart(self, store):
        fill(store, 3000)
        # Warm the cache with reads.
        for i in range(0, 3000, 11):
            store.get(f"key{i:06d}".encode())
        store.pcache.sync()
        warm = len(store.pcache)
        assert warm > 0
        store2 = store.reopen()
        assert store2.pcache.stats.recovered_entries > 0

    def test_repeated_crash_cycles(self, store):
        s = store
        for cycle in range(3):
            fill(s, 300, prefix=f"c{cycle}-")
            s = s.reopen(crash=True)
            for prev in range(cycle + 1):
                assert s.get(f"c{prev}-000000".encode()) is not None


class TestCacheBehaviour:
    def test_metadata_pinned_for_cloud_files(self, store):
        fill(store, 3000)
        assert store.pcache.meta_bytes > 0
        # Metadata footprint is much smaller than the cloud-resident data.
        assert store.pcache.meta_bytes < store.placement.cloud_table_bytes() / 3

    def test_repeated_reads_hit_pcache(self, store):
        fill(store, 3000)
        hot = [f"key{i:06d}".encode() for i in range(100)]
        for _ in range(3):
            for k in hot:
                store.get(k)
        before_gets = store.counters.get("cloud.get_ops")
        for k in hot:
            store.get(k)
        extra = store.counters.get("cloud.get_ops") - before_gets
        # The hot set is cached (DRAM or pcache); few or no new cloud reads.
        assert extra < len(hot) / 2

    def test_prewarm_happens_with_hot_workload(self):
        config = StoreConfig(layout=LayoutConfig(prewarm_heat_threshold=0.5)).small()
        store = RocksMashStore.create(config)
        rng = random.Random(7)
        keys = [f"key{i:05d}".encode() for i in range(500)]
        for i, k in enumerate(keys):
            store.put(k, b"x" * 80)
        # Zipf-ish hot reads interleaved with writes that trigger compactions.
        for step in range(4000):
            if step % 4 == 0:
                store.put(rng.choice(keys), b"y" * 80)
            else:
                store.get(keys[int(rng.paretovariate(1.2)) % 100])
        assert store.heat.prewarmed_blocks > 0

    def test_naive_layout_never_prewarms(self):
        config = StoreConfig(layout=LayoutConfig(aware=False)).small()
        store = RocksMashStore.create(config)
        rng = random.Random(7)
        keys = [f"key{i:05d}".encode() for i in range(500)]
        for k in keys:
            store.put(k, b"x" * 80)
        for step in range(2000):
            if step % 4 == 0:
                store.put(rng.choice(keys), b"y" * 80)
            else:
                store.get(keys[int(rng.paretovariate(1.2)) % 100])
        assert store.heat.prewarmed_blocks == 0


class TestXWalIntegration:
    def test_shard_files_exist(self, store):
        store.put(b"k", b"v")
        xlogs = [n for n in store.env.list_files("db/") if n.endswith(".xlog")]
        assert len(xlogs) == store.config.xwal.num_shards

    def test_more_shards_faster_recovery(self):
        def recovery_time(shards):
            # Large write buffer so the whole workload stays in the WAL:
            # recovery is then dominated by log replay, which is the phase
            # the xWAL parallelizes.
            config = StoreConfig(
                xwal=XWalConfig(num_shards=shards, apply_cost_per_record=20e-6)
            )
            s = RocksMashStore.create(config)
            for i in range(2000):
                s.put(f"key{i:05d}".encode(), b"v" * 100)
            s2 = s.reopen(crash=True)
            assert s2.get(b"key00000") is not None
            return s2.last_recovery_seconds

        t1 = recovery_time(1)
        t8 = recovery_time(8)
        assert t8 < t1

    def test_stats_shape(self, store):
        fill(store, 500)
        stats = store.stats()
        for key in [
            "local_bytes",
            "cloud_bytes",
            "pcache_meta_bytes",
            "demotions",
            "compactions",
        ]:
            assert key in stats

    def test_cost_report(self, store):
        fill(store, 2000)
        bill = store.cost_report(max(store.clock.now, 1e-9))
        assert bill.total > 0
        assert bill.storage >= 0 and bill.requests >= 0
