"""Integration tests for fully directory-backed deployments."""

import pytest

from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.diskfile import directory_backed_object_store


class TestDiskObjectStore:
    def test_objects_survive_new_instance(self, tmp_path):
        store = directory_backed_object_store(tmp_path / "s3", SimClock())
        store.put("bucket/key1", b"hello")
        store.put("bucket/key2", b"world")
        store.delete("bucket/key2")
        store2 = directory_backed_object_store(tmp_path / "s3", SimClock())
        assert store2.get("bucket/key1") == b"hello"
        assert not store2.exists("bucket/key2")
        assert store2.list_keys("bucket/") == ["bucket/key1"]

    def test_copy_persisted(self, tmp_path):
        store = directory_backed_object_store(tmp_path / "s3", SimClock())
        store.put("a", b"data")
        store.copy("a", "b")
        store2 = directory_backed_object_store(tmp_path / "s3", SimClock())
        assert store2.get("b") == b"data"

    def test_timing_still_simulated(self, tmp_path):
        clock = SimClock()
        store = directory_backed_object_store(tmp_path / "s3", clock)
        store.put("k", b"x" * 1000)
        assert clock.now >= store.model.write_latency


class TestOnDiskRocksMash:
    def test_full_store_survives_process_restart(self, tmp_path):
        config = StoreConfig().small()
        store = RocksMashStore.at_directory(tmp_path / "deploy", config)
        for i in range(2500):
            store.put(f"key{i:06d}".encode(), f"value-{i}".encode())
        assert store.placement.cloud_table_bytes() > 0  # tiering happened
        store.close()

        # "New process": everything rebuilt from the directory.
        store2 = RocksMashStore.at_directory(tmp_path / "deploy", config)
        for i in range(0, 2500, 111):
            assert store2.get(f"key{i:06d}".encode()) == f"value-{i}".encode()
        assert store2.placement.cloud_table_bytes() > 0
        assert store2.pcache.stats.recovered_entries >= 0
        store2.put(b"post-restart", b"v")
        assert store2.get(b"post-restart") == b"v"
        store2.close()

    def test_checkpoint_restore_across_directories(self, tmp_path):
        from repro.mash.checkpoint import create_checkpoint, restore_checkpoint

        config = StoreConfig().small()
        store = RocksMashStore.at_directory(tmp_path / "deploy", config)
        for i in range(1000):
            store.put(f"key{i:05d}".encode(), b"v" * 40)
        create_checkpoint(store, "snap")
        clone = restore_checkpoint(store.cloud_store, "snap", config)
        assert clone.get(b"key00500") == b"v" * 40

    def test_consistency_check_on_disk(self, tmp_path):
        from repro.lsm.check import check_db

        config = StoreConfig().small()
        store = RocksMashStore.at_directory(tmp_path / "deploy", config)
        for i in range(1500):
            store.put(f"key{i:05d}".encode(), b"v" * 40)
        store.close()
        store2 = RocksMashStore.at_directory(tmp_path / "deploy", config)
        report = check_db(store2.env, "db/", config.options)
        assert report.ok, report.errors
