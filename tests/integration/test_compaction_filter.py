"""Integration tests for the user compaction filter (TTL/GC policies)."""

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def options_with_filter(keep, **kw):
    defaults = dict(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
        compaction_filter=keep,
    )
    defaults.update(kw)
    return Options(**defaults)


def open_db(keep, **kw):
    return DB.open(LocalEnv(LocalDevice(SimClock())), "db/", options_with_filter(keep, **kw))


class TestCompactionFilter:
    def test_filtered_entries_vanish_after_full_compaction(self):
        # Retire every value marked expired.
        db = open_db(lambda key, value: not value.startswith(b"EXPIRED"))
        for i in range(200):
            marker = b"EXPIRED" if i % 2 == 0 else b"live"
            db.put(f"k{i:04d}".encode(), marker + b"-payload")
        db.compact_range()
        survivors = dict(db.scan())
        assert len(survivors) == 100
        assert all(v.startswith(b"live") for v in survivors.values())
        assert db.compaction_stats.entries_filtered >= 100
        db.close()

    def test_filter_is_a_persistent_delete(self):
        db = open_db(lambda key, value: key < b"k0100")
        for i in range(200):
            db.put(f"k{i:04d}".encode(), b"v")
        db.compact_range()
        assert db.get(b"k0099") == b"v"
        assert db.get(b"k0150") is None
        db.close()

    def test_snapshot_protected_entries_not_filtered(self):
        db = open_db(lambda key, value: False)  # retire everything eligible
        for i in range(100):
            db.put(f"k{i:03d}".encode(), b"v")
        snap = db.snapshot()
        db.compact_range()
        # The snapshot pins sequences: entries it can see must survive.
        assert db.get(b"k050", snapshot=snap) == b"v"
        db.release_snapshot(snap)
        db.compact_range()
        assert db.get(b"k050") is None
        db.close()

    def test_no_filter_keeps_everything(self):
        db = open_db(None)
        for i in range(100):
            db.put(f"k{i:03d}".encode(), b"v")
        db.compact_range()
        assert len(list(db.scan())) == 100
        assert db.compaction_stats.entries_filtered == 0
        db.close()

    def test_filter_with_universal_style_no_resurrection(self):
        """A filtered entry in a young run must not resurrect an older
        version buried in an old run (conversion to tombstone, not drop)."""
        db = open_db(
            lambda key, value: not value.startswith(b"GONE"),
            compaction_style="universal",
            target_file_size_base=1 << 20,
        )
        # Old generation: plain values, flushed into an old run.
        for i in range(300):
            db.put(f"k{i:04d}".encode(), b"old-value")
        db.flush()
        # New generation: values the filter retires.
        for i in range(300):
            db.put(f"k{i:04d}".encode(), b"GONE")
        for round_ in range(6):  # churn to force partial merges
            for i in range(100):
                db.put(f"pad{round_}-{i:04d}".encode(), b"x" * 60)
        for i in range(0, 300, 13):
            assert db.get(f"k{i:04d}".encode()) in (None, b"GONE"), i
        db.close()

    def test_ttl_style_filter(self):
        """A TTL policy: values embed an expiry stamp; compaction purges."""
        now = 1000

        def keep(key, value):
            expiry = int(value.split(b"|")[0])
            return expiry > now

        db = open_db(keep)
        for i in range(100):
            expiry = 500 if i < 50 else 2000
            db.put(f"k{i:03d}".encode(), f"{expiry}|data".encode())
        db.compact_range()
        alive = dict(db.scan())
        assert len(alive) == 50
        assert all(int(v.split(b"|")[0]) > now for v in alive.values())
        db.close()
