"""Integration tests for DB maintenance: orphan purge, manifest rewrite."""

import pytest

from repro.lsm.db import DB
from repro.lsm.format import manifest_file_name, table_file_name
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options(**kw):
    defaults = dict(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )
    defaults.update(kw)
    return Options(**defaults)


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


class TestOrphanPurge:
    def test_orphan_table_removed_on_recovery(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"k", b"v")
        db.flush()
        db.close()
        # Plant an orphan: a table file never committed to the manifest.
        orphan = table_file_name("db/", 9999)
        env.write_file(orphan, b"junk table bytes")
        db2 = DB.open(env, "db/", small_options())
        assert not env.file_exists(orphan)
        assert db2.orphans_purged >= 1
        assert db2.get(b"k") == b"v"
        db2.close()

    def test_orphan_manifest_removed_on_recovery(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"k", b"v")
        db.close()
        orphan = manifest_file_name("db/", 9998)
        env.write_file(orphan, b"stale manifest")
        db2 = DB.open(env, "db/", small_options())
        assert not env.file_exists(orphan)
        db2.close()

    def test_purge_notifies_cache_listeners(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"k", b"v")
        db.flush()
        db.close()
        orphan = table_file_name("db/", 7777)
        env.write_file(orphan, b"junk")
        deleted = []
        db2 = DB(env, "db/", small_options())
        db2.listeners.on_table_delete.append(deleted.append)
        db2._recover()
        assert orphan in deleted
        db2.close()

    def test_live_files_never_purged(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(2000):
            db.put(f"k{i:05d}".encode(), b"x" * 50)
        db.flush()
        live_before = {
            table_file_name("db/", m.number)
            for _, m in db.versions.current.all_files()
        }
        db.close()
        db2 = DB.open(env, "db/", small_options())
        for name in live_before:
            assert env.file_exists(name), name
        for i in range(0, 2000, 111):
            assert db2.get(f"k{i:05d}".encode()) is not None
        db2.close()


class TestManifestRewrite:
    def test_manifest_stays_bounded(self, env):
        options = small_options(max_manifest_file_size=2 << 10)
        db = DB.open(env, "db/", options)
        for i in range(4000):
            db.put(f"k{i % 500:04d}".encode(), b"x" * 60)
        # The manifest would be tens of KB without rewriting.
        assert db.versions.manifest_bytes() <= 4 << 10
        db.close()

    def test_recovery_after_rewrite(self, env):
        options = small_options(max_manifest_file_size=2 << 10)
        db = DB.open(env, "db/", options)
        for i in range(3000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        number_after = db.versions.manifest_number
        assert number_after > 1  # at least one rewrite happened
        db.close()
        db2 = DB.open(env, "db/", options)
        for i in range(0, 3000, 131):
            assert db2.get(f"k{i:05d}".encode()) is not None
        db2.close()

    def test_only_one_manifest_on_disk(self, env):
        options = small_options(max_manifest_file_size=2 << 10)
        db = DB.open(env, "db/", options)
        for i in range(3000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        manifests = [n for n in env.list_files("db/") if "MANIFEST" in n]
        assert len(manifests) == 1
        db.close()

    def test_rewrite_disabled_with_zero(self, env):
        options = small_options(max_manifest_file_size=0)
        db = DB.open(env, "db/", options)
        for i in range(3000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        assert db.versions.manifest_number == 1  # never rewritten
        db.close()

    def test_crash_after_rewrite_recovers(self, env):
        device = env.device
        options = small_options(max_manifest_file_size=2 << 10)
        db = DB.open(env, "db/", options)
        for i in range(3000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        assert db.versions.manifest_number > 1
        device.crash()
        db2 = DB.open(env, "db/", options)
        for i in range(0, 3000, 131):
            assert db2.get(f"k{i:05d}".encode()) is not None
        db2.close()

    def test_explicit_rewrite_api(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"k", b"v")
        db.flush()
        old = db.versions.manifest_number
        purged = db.versions.rewrite_manifest()
        assert purged == old
        assert db.versions.manifest_number > old
        assert db.get(b"k") == b"v"
        db.close()
        db2 = DB.open(env, "db/", small_options())
        assert db2.get(b"k") == b"v"
        db2.close()
