"""Integration: the parallel compaction pipeline on the full hybrid store.

Covers the three pipeline stages end to end — subcompaction partitioning,
coalesced cloud reads, and overlapped demotion uploads — plus the clock
hygiene the fork/join machinery guarantees.
"""

import random

import pytest

from repro.bench.harness import HarnessKnobs, make_store
from repro.mash.store import RocksMashStore, StoreConfig
from repro.workloads.generator import make_key, make_value


def build_store(parallelism, readahead, records=2500):
    knobs = HarnessKnobs(
        max_subcompactions=parallelism,
        compaction_readahead_bytes=readahead,
    )
    store = make_store("rocksmash", knobs)
    rng = random.Random(7)
    for i in range(records):
        store.put(make_key(rng.randrange(10**8)), make_value(i, 60))
    return store


def compact_and_measure(store):
    gets_before = store.counters.get("cloud.get_ops")
    start = store.clock.now
    store.compact_range(None, None)
    return store.clock.now - start, store.counters.get("cloud.get_ops") - gets_before


class TestParallelCompactionPipeline:
    def test_contents_identical_and_faster(self):
        serial = build_store(1, 0)
        parallel = build_store(4, 128 << 10)
        serial_seconds, serial_gets = compact_and_measure(serial)
        parallel_seconds, parallel_gets = compact_and_measure(parallel)

        assert list(parallel.db.scan(None, None)) == list(serial.db.scan(None, None))
        assert parallel_seconds * 1.5 <= serial_seconds
        assert parallel_gets * 2 <= serial_gets
        assert parallel.db.compaction_stats.subcompactions_run >= 2
        assert parallel.db.compaction_stats.coalesced_fetches > 0

    def test_deterministic_across_runs(self):
        first = build_store(4, 128 << 10)
        second = build_store(4, 128 << 10)
        assert compact_and_measure(first) == compact_and_measure(second)
        assert list(first.db.scan(None, None)) == list(second.db.scan(None, None))
        assert first.clock.now == second.clock.now

    def test_upload_overlap_recovers_time(self):
        store = build_store(4, 128 << 10)
        store.compact_range(None, None)
        assert store.counters.get("compaction.upload_overlap_us_saved") > 0

    def test_serial_uploads_when_parallelism_one(self):
        knobs = HarnessKnobs(upload_parallelism=1)
        store = make_store("rocksmash", knobs)
        for i in range(1200):
            store.put(make_key(i), make_value(i, 60))
        store.compact_range(None, None)
        # Demotions still happen; no overlap accounting is claimed.
        assert store.placement.demotions > 0
        assert store.counters.get("compaction.upload_overlap_us_saved") == 0

    def test_universal_partial_merges_refuse_to_split(self):
        import dataclasses

        base = StoreConfig().small()
        # Universal needs run == file: big target size, as in E17 (small
        # targets make partial merges emit multi-file runs and re-trigger).
        options = dataclasses.replace(
            base.options,
            compaction_style="universal",
            max_subcompactions=4,
            target_file_size_base=1 << 20,
        )
        store = RocksMashStore.create(dataclasses.replace(base, options=options))
        for i in range(2000):
            store.put(make_key(i % 400), make_value(i, 60))
        store.flush()
        # Partial merges (output stays an L0 run) must not partition; only
        # a full/bottom-level compaction may. L0 run files are disjoint
        # per run, so any L0 file count equals the run count.
        version = store.db.versions.current
        runs = version.num_files(0)
        trigger = options.level0_file_num_compaction_trigger
        assert runs <= trigger


class TestClockHygiene:
    def test_multi_get_restores_clocks(self):
        store = build_store(1, 0, records=600)
        keys = [make_key(i) for i in range(0, 64)]
        store.multi_get(keys)
        assert store.local_device.clock is store.clock
        assert store.cloud_store.clock is store.clock

    def test_multi_get_restores_clocks_on_error(self):
        store = build_store(1, 0, records=600)
        original_get = store.db.get

        def explode(key, **kwargs):
            raise RuntimeError("injected")

        store.db.get = explode
        with pytest.raises(RuntimeError):
            store.multi_get([make_key(1), make_key(2), make_key(3)])
        store.db.get = original_get
        assert store.local_device.clock is store.clock
        assert store.cloud_store.clock is store.clock

    def test_compaction_restores_clocks(self):
        store = build_store(4, 128 << 10)
        store.compact_range(None, None)
        assert store.local_device.clock is store.clock
        assert store.cloud_store.clock is store.clock
