"""Integration tests for DB recovery: reopen, crash, WAL replay."""

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def device():
    return LocalDevice(SimClock())


@pytest.fixture
def env(device):
    return LocalEnv(device)


class TestCleanReopen:
    def test_reopen_sees_all_data(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(500):
            db.put(f"k{i:05d}".encode(), f"v{i}".encode())
        db.close()
        db2 = DB.open(env, "db/", small_options())
        for i in range(0, 500, 23):
            assert db2.get(f"k{i:05d}".encode()) == f"v{i}".encode()
        db2.close()

    def test_reopen_preserves_sequence(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        seq = db.versions.last_sequence
        db.close()
        db2 = DB.open(env, "db/", small_options())
        assert db2.versions.last_sequence == seq
        db2.put(b"c", b"3")
        assert db2.versions.last_sequence == seq + 1
        db2.close()

    def test_reopen_preserves_deletes(self, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"k", b"v")
        db.delete(b"k")
        db.close()
        db2 = DB.open(env, "db/", small_options())
        assert db2.get(b"k") is None
        db2.close()

    def test_multiple_reopen_cycles(self, env):
        for cycle in range(4):
            db = DB.open(env, "db/", small_options())
            for i in range(50):
                db.put(f"cycle{cycle}-{i}".encode(), str(cycle).encode())
            # everything from earlier cycles still present
            for prev in range(cycle):
                assert db.get(f"cycle{prev}-0".encode()) == str(prev).encode()
            db.close()


class TestCrashRecovery:
    def test_synced_writes_survive_crash(self, device, env):
        db = DB.open(env, "db/", small_options())
        for i in range(100):
            db.put(f"k{i:04d}".encode(), f"v{i}".encode(), sync=True)
        device.crash()  # no clean close
        db2 = DB.open(env, "db/", small_options())
        for i in range(100):
            assert db2.get(f"k{i:04d}".encode()) == f"v{i}".encode()
        db2.close()

    def test_unsynced_writes_may_be_lost_but_prefix_consistent(self, device, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"synced", b"v", sync=True)
        db.put(b"unsynced", b"v", sync=False)
        device.crash()
        db2 = DB.open(env, "db/", small_options())
        assert db2.get(b"synced") == b"v"
        assert db2.get(b"unsynced") is None
        db2.close()

    def test_crash_after_flush_and_more_writes(self, device, env):
        db = DB.open(env, "db/", small_options())
        for i in range(300):
            db.put(f"a{i:04d}".encode(), b"x" * 50)
        db.flush()
        for i in range(50):
            db.put(f"b{i:04d}".encode(), b"y" * 20, sync=True)
        device.crash()
        db2 = DB.open(env, "db/", small_options())
        assert db2.get(b"a0000") == b"x" * 50
        assert db2.get(b"b0049") == b"y" * 20
        db2.close()

    def test_crash_during_heavy_compaction_history(self, device, env):
        db = DB.open(env, "db/", small_options())
        for i in range(2000):
            db.put(f"k{i % 300:04d}".encode(), f"gen{i}".encode() + b"z" * 30)
        device.crash()
        db2 = DB.open(env, "db/", small_options())
        # Every key holds its newest synced value.
        for i in range(300):
            value = db2.get(f"k{i:04d}".encode())
            assert value is not None and value.startswith(b"gen")
        db2.close()

    def test_recovered_db_continues_normally(self, device, env):
        db = DB.open(env, "db/", small_options())
        db.put(b"before", b"1")
        device.crash()
        db2 = DB.open(env, "db/", small_options())
        db2.put(b"after", b"2")
        db2.flush()
        db2.compact_range()
        assert db2.get(b"before") == b"1"
        assert db2.get(b"after") == b"2"
        db2.close()


class TestWalHygiene:
    def test_old_wal_files_deleted_after_flush(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(1000):
            db.put(f"k{i:05d}".encode(), b"x" * 50)
        db.flush()
        logs = [n for n in env.list_files("db/") if n.endswith(".log")]
        assert len(logs) == 1  # only the live generation remains
        db.close()

    def test_obsolete_tables_deleted(self, env):
        db = DB.open(env, "db/", small_options())
        for i in range(3000):
            db.put(f"k{i % 200:04d}".encode(), b"x" * 40)
        db.compact_range()
        on_disk = {n for n in env.list_files("db/") if n.endswith(".sst")}
        live = {
            f"db/{meta.number:06d}.sst"
            for _, meta in db.versions.current.all_files()
        }
        assert on_disk == live
        db.close()
