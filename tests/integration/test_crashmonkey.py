"""In-process run of the crashmonkey matrix.

Keeps the reliability harness itself under test: every registered crash
point must fire under the standard workload and pass recovery
verification, random seeded schedules must pass, and a deliberately
broken oracle expectation must be *caught* (the harness can fail, so a
clean matrix means something).
"""

import pytest

from repro.bench.crashmonkey import (
    ScheduleResult,
    crashmonkey_config,
    format_matrix,
    main,
    run_matrix,
    run_schedule,
)
from repro.sim.failure import crash_points


@pytest.fixture(autouse=True)
def _clean_registry():
    crash_points.reset()
    yield
    crash_points.reset()


def test_every_registered_site_fires_and_recovers():
    results = [
        run_schedule(site, require_fired=True) for site in crash_points.sites()
    ]
    assert len(results) >= 8
    assert all(r.fired for r in results), format_matrix(results)
    assert all(r.ok for r in results), format_matrix(results)


def test_random_schedules_pass():
    results = run_matrix(seeds=3)
    assert all(r.ok for r in results), format_matrix(results)


def test_schedule_is_deterministic():
    a = run_schedule("compaction.after_outputs", torn_tail_seed=5)
    b = run_schedule("compaction.after_outputs", torn_tail_seed=5)
    assert (a.fired, a.problems) == (b.fired, b.problems)


def test_unreached_site_reported_when_required():
    # skip=10**6 means the site can never fire within the workload.
    result = run_schedule("flush.before_manifest", skip=10**6, require_fired=True)
    assert not result.fired
    assert not result.ok
    assert "never reached" in result.problems[0]


def test_harness_detects_injected_divergence(monkeypatch):
    # Sabotage verification so a "lost" acked write is simulated; the
    # harness must flag it rather than report a clean pass.
    from repro.sim import failure

    real_verify = failure.RecoveryOracle.verify

    def lying_store_verify(self, store):
        self.acked[b"never-written-key"] = b"expected-value"
        return real_verify(self, store)

    monkeypatch.setattr(failure.RecoveryOracle, "verify", lying_store_verify)
    result = run_schedule("flush.after_manifest")
    assert not result.ok


def test_format_matrix_summarises():
    results = [
        ScheduleResult(site="flush.before_manifest", skip=0, torn_tail=False, fired=True),
        ScheduleResult(
            site="demote.mid_upload",
            skip=1,
            torn_tail=True,
            fired=True,
            problems=["boom"],
        ),
    ]
    text = format_matrix(results)
    assert "2 schedules, 1 failing" in text
    assert "! boom" in text


def test_cli_quick_exits_zero(capsys):
    assert main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "0 failing" in out


def test_config_uses_tiny_thresholds():
    config = crashmonkey_config()
    assert config.options.write_buffer_size <= 8 << 10
    assert config.placement.multipart_part_bytes <= 4 << 10
    assert config.xwal.num_shards > 1
