"""Integration tests for cloud checkpoints and restores."""

import pytest

from repro.errors import NotFoundError
from repro.mash.checkpoint import (
    create_checkpoint,
    delete_checkpoint,
    list_checkpoints,
    restore_checkpoint,
)
from repro.mash.store import RocksMashStore, StoreConfig


@pytest.fixture
def store():
    s = RocksMashStore.create(StoreConfig().small())
    for i in range(2000):
        s.put(f"key{i:06d}".encode(), f"value-{i}".encode())
    return s


class TestCreate:
    def test_create_and_list(self, store):
        info = create_checkpoint(store, "nightly")
        assert info.num_tables > 0
        assert info.total_bytes > 0
        assert list_checkpoints(store.cloud_store) == ["nightly"]

    def test_cloud_tables_copied_not_uploaded(self, store):
        store.compact_range()  # push (almost) everything to cloud levels
        info = create_checkpoint(store, "cheap")
        # Server-side copies dominate: uploads are only the local upper levels.
        assert info.uploaded_bytes < info.total_bytes / 2

    def test_duplicate_name_rejected(self, store):
        create_checkpoint(store, "x")
        with pytest.raises(ValueError):
            create_checkpoint(store, "x")

    def test_invalid_name_rejected(self, store):
        with pytest.raises(ValueError):
            create_checkpoint(store, "a/b")
        with pytest.raises(ValueError):
            create_checkpoint(store, "")

    def test_memtable_captured(self, store):
        store.put(b"last-minute", b"write")  # still in the memtable
        create_checkpoint(store, "x")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        assert restored.get(b"last-minute") == b"write"

    def test_store_keeps_running_after_checkpoint(self, store):
        create_checkpoint(store, "x")
        store.put(b"after", b"v")
        assert store.get(b"after") == b"v"
        store.compact_range()
        assert store.get(b"key000100") is not None


class TestRestore:
    def test_restore_full_contents(self, store):
        create_checkpoint(store, "x")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        for i in range(0, 2000, 97):
            assert restored.get(f"key{i:06d}".encode()) == f"value-{i}".encode()
        assert len(restored.scan(limit=5)) == 5

    def test_restore_is_point_in_time(self, store):
        create_checkpoint(store, "x")
        store.put(b"key000000", b"MUTATED-AFTER")
        store.delete(b"key000001")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        assert restored.get(b"key000000") == b"value-0"
        assert restored.get(b"key000001") == b"value-1"

    def test_restored_store_diverges_independently(self, store):
        create_checkpoint(store, "x")
        r1 = restore_checkpoint(store.cloud_store, "x", store.config)
        r2 = restore_checkpoint(store.cloud_store, "x", store.config)
        r1.put(b"who", b"r1")
        r2.put(b"who", b"r2")
        assert r1.get(b"who") == b"r1"
        assert r2.get(b"who") == b"r2"
        assert store.get(b"who") is None

    def test_restored_store_writable_and_compactable(self, store):
        create_checkpoint(store, "x")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        for i in range(1000):
            restored.put(f"new{i:05d}".encode(), b"fresh" * 10)
        restored.compact_range()
        assert restored.get(b"new00500") == b"fresh" * 10
        assert restored.get(b"key000100") is not None

    def test_restored_store_survives_crash(self, store):
        create_checkpoint(store, "x")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        restored.put(b"post-restore", b"v")
        recovered = restored.reopen(crash=True)
        assert recovered.get(b"post-restore") == b"v"
        assert recovered.get(b"key000100") is not None

    def test_restore_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            restore_checkpoint(store.cloud_store, "ghost", store.config)

    def test_restore_consistency_checks_clean(self, store):
        from repro.lsm.check import check_db

        create_checkpoint(store, "x")
        restored = restore_checkpoint(store.cloud_store, "x", store.config)
        restored.close()
        report = check_db(restored.env, "db/", store.config.options)
        assert report.ok, report.errors


class TestDelete:
    def test_delete_removes_objects(self, store):
        create_checkpoint(store, "x")
        removed = delete_checkpoint(store.cloud_store, "x")
        assert removed > 0
        assert list_checkpoints(store.cloud_store) == []
        with pytest.raises(NotFoundError):
            restore_checkpoint(store.cloud_store, "x", store.config)

    def test_delete_does_not_touch_live_db(self, store):
        create_checkpoint(store, "x")
        delete_checkpoint(store.cloud_store, "x")
        assert store.get(b"key000100") is not None
        store.compact_range()
        assert store.get(b"key001999") is not None
