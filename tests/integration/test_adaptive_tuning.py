"""End-to-end behaviour of the live tuning loop inside RocksMash.

The unit suite proves the controller's rules in isolation; these tests
prove the *wiring*: facade ops feed the controller, applied knobs actually
change engine behaviour (filters migrate at flush/compaction, prefetch
pipelines appear and disappear), bloom probe outcomes surface as tracer
events and properties, and a tuned run is bit-for-bit reproducible.
"""

import hashlib
from dataclasses import replace

from repro.mash.store import RocksMashStore, StoreConfig
from repro.serve.sharded import ServeConfig, ShardedDB
from repro.tune import TuningConfig
from repro.workloads.generator import make_key
from repro.workloads.ycsb import (
    WORKLOAD_A,
    apply_op,
    iter_ops,
    outcome_digest_update,
)


def tuned_config(interval: int = 100) -> StoreConfig:
    return replace(StoreConfig().small(), tuning=TuningConfig(interval_ops=interval))


class TestBloomCounters:
    def test_probe_outcomes_counted_and_exported(self):
        store = RocksMashStore.create(StoreConfig().small())
        # Even keys only: the odd keys are absent but *inside* every
        # table's key range, so lookups reach the filters.
        for i in range(0, 400, 2):
            store.put(make_key(i), b"v" * 50, sync=False)
        store.flush()
        for i in range(0, 100, 2):
            assert store.get(make_key(i)) is not None
        checked_after_hits = store.db.bloom_stats["bloom_checked"]
        assert checked_after_hits > 0
        useful_before = store.db.bloom_stats["bloom_useful"]
        for i in range(1, 100, 2):  # absent keys: the filter must reject
            assert store.get(make_key(i)) is None
        assert store.db.bloom_stats["bloom_useful"] > useful_before
        # Exported through the tracer event stream and the property.
        assert store.tracer.event_count("bloom_checked") == store.db.bloom_stats[
            "bloom_checked"
        ]
        prop = store.db.get_property("repro.bloom-stats")
        assert "bloom_useful=" in prop and "allocation=uniform:10" in prop
        assert "bloom" in store.db.get_property("repro.stats")

    def test_useful_rejects_save_cloud_gets(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(0, 1200, 2):
            store.put(make_key(i), b"v" * 60, sync=False)
        store.flush()
        store.compact_range()  # push tables down (and to the cloud tier)
        gets_before = store.counters.get("cloud.get_ops")
        useful_before = store.db.bloom_stats["bloom_useful"]
        for i in range(1, 400, 2):  # in-range misses
            assert store.get(make_key(i)) is None
        rejected = store.db.bloom_stats["bloom_useful"] - useful_before
        assert rejected > 0
        # A bloom reject answers without a data-block fetch: misses cost
        # far fewer GETs than one per (miss, table) pair.
        gets = store.counters.get("cloud.get_ops") - gets_before
        assert gets < rejected


class TestLiveKnobMigration:
    def test_filter_allocation_migrates_at_flush(self):
        store = RocksMashStore.create(tuned_config(interval=50))
        # Phase 1: point-read-free load — builds levels under uniform bits.
        for i in range(400):
            store.put(make_key(i), b"v" * 80, sync=False)
        store.flush()
        # Phase 2: pure point reads — the controller skews bits upward.
        for i in range(400):
            store.get(make_key(i % 400))
        alloc = store.config.options.filter_allocation
        assert alloc is not None
        # The point-read phase skews bits toward the upper levels.
        assert alloc.bits_for(0) > alloc.bits_for(2)
        # New tables built after the change carry the per-level policy
        # (the controller may keep refining as the mix shifts back to
        # writes — the property always reports the live allocation).
        for i in range(400, 800):
            store.put(make_key(i), b"v" * 80, sync=False)
        store.flush()
        live = store.config.options.filter_allocation
        assert live is not None
        prop = store.db.get_property("repro.bloom-stats")
        assert f"allocation={live.describe()}" in prop

    def test_prefetch_pipeline_follows_live_depth(self):
        store = RocksMashStore.create(tuned_config())
        assert store.db.scan_pipeline_factory is not None
        store.config.options.scan_prefetch_depth = 0
        assert store.db.scan_pipeline_factory(None, None) is None
        store.config.options.scan_prefetch_depth = 2
        pipeline = store.db.scan_pipeline_factory(None, None)
        assert pipeline is not None and pipeline.depth == 2
        pipeline.finish()


class TestAdaptiveDeterminism:
    def _run(self):
        store = RocksMashStore.create(tuned_config(interval=200))
        spec = replace(
            WORKLOAD_A, record_count=300, operation_count=800, value_size=100
        )
        for i in range(spec.record_count):
            store.put(make_key(i), b"v" * spec.value_size, sync=False)
        hasher = hashlib.sha256()
        for op in iter_ops(spec, seed=7):
            outcome_digest_update(hasher, op, apply_op(store, op))
        return hasher.hexdigest(), store.tuner.trajectory_digest()

    def test_same_stream_same_outcome_and_trajectory(self):
        outcome_a, knobs_a = self._run()
        outcome_b, knobs_b = self._run()
        assert outcome_a == outcome_b
        assert knobs_a == knobs_b


class TestShardedTuning:
    def test_per_shard_controllers_without_prefetch(self):
        base = replace(StoreConfig().small(), tuning=TuningConfig(interval_ops=30))
        node = ShardedDB(ServeConfig(base=base, num_shards=2, key_space=400))
        for i in range(400):
            node.put(make_key(i), b"v" * 64)
        for i in range(400):
            node.get(make_key(i))
        for shard in node.shards:
            assert shard.tuner is not None
            assert shard.tuner.config.tune_prefetch_depth is False
            assert shard.db.scan_pipeline_factory is None
            assert shard.tuner.tracer is node.tracer
        # Both shards saw traffic, so both controllers evaluated.
        assert all(shard.tuner.trajectory for shard in node.shards)
