"""Blob-log crash-protocol regressions.

Three invariants the review of the blob log hardened:

* recovery's re-seal of a crashed active segment is itself crash-idempotent
  — a second crash anywhere inside it (including mid multipart upload, where
  the cloud object is still invisible) must leave a durable copy behind;
* a sync=True WAL append makes *every* earlier unsynced WAL record durable,
  so the blob bytes behind pointers from prior sync=False batches must be
  synced first, even by a batch that diverts nothing itself;
* key-value separation is a store-lifetime choice: the MANIFEST brands
  separated stores at creation and an unbranded store refuses to open with
  separation enabled (a raw value starting with the pointer magic would be
  misread as a pointer).
"""

from dataclasses import replace

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.check import check_db
from repro.lsm.format import blob_file_name
from repro.mash.store import RocksMashStore, StoreConfig
from repro.mash.xwal import XWalConfig
from repro.sim.failure import CrashPointFired, crash_points


@pytest.fixture(autouse=True)
def _clean_registry():
    crash_points.reset()
    yield
    crash_points.reset()


def blob_config() -> StoreConfig:
    """Blob separation on; big buffers/segments so nothing seals or flushes
    until the test says so; 1 KiB multipart parts so a few diverted values
    already make the re-seal upload multi-part."""
    config = StoreConfig().small()
    return replace(
        config,
        options=replace(
            config.options,
            write_buffer_size=1 << 20,
            blob_value_threshold=64,
            blob_segment_bytes=1 << 20,
        ),
        placement=replace(config.placement, multipart_part_bytes=1 << 10),
        xwal=XWalConfig(num_shards=1),
    )


def key_of(i: int) -> bytes:
    return f"key{i:05d}".encode()


def big_value(i: int, size: int = 500) -> bytes:
    return f"v{i:05d}-".encode() + b"x" * size


def reopen_after(store: RocksMashStore) -> RocksMashStore:
    """Rebuild a store over devices whose previous recovery itself crashed
    (the interrupted ``reopen`` never returned an instance)."""
    return store.reopen(crash=True)


class TestRecoveryResealCrash:
    @pytest.mark.parametrize(
        "site", ["bloblog.seal_mid_upload", "bloblog.seal_before_manifest"]
    )
    def test_crash_inside_recovery_reseal_loses_nothing(self, site):
        """Crash once with the active segment unmanifested, then crash again
        inside the recovery that re-seals it. Every acked value must survive
        the double crash: the re-seal keeps a durable (truncated-in-place)
        local copy until the MANIFEST edit commits, so the third recovery
        has something to adopt."""
        store = RocksMashStore.create(blob_config())
        expected = {}
        for i in range(8):  # ~4 KiB of records: multi-part at 1 KiB parts
            expected[key_of(i)] = big_value(i)
            store.put(key_of(i), expected[key_of(i)], sync=True)
        assert store.db.blob_store.active_offset > 0, "segment must be active"
        assert store.db.versions.blob_segments == {}, "and unmanifested"

        crash_points.arm(site)
        with pytest.raises(CrashPointFired):
            store.reopen(crash=True)  # crash #1 + recovery that crashes again
        crash_points.disarm()

        store = reopen_after(store)  # crash #2, this recovery must complete
        for key, value in expected.items():
            assert store.get(key) == value
        report = check_db(store.env, store.config.db_prefix, store.config.options)
        assert report.errors == []
        store.close()

    def test_reseal_commit_then_local_cleanup(self):
        """The happy-path re-seal still cleans up: after an uninterrupted
        recovery the adopted segment is MANIFEST-known, cloud-resident, and
        the local copy is gone."""
        store = RocksMashStore.create(blob_config())
        for i in range(8):
            store.put(key_of(i), big_value(i), sync=True)
        store = store.reopen(crash=True)
        assert len(store.db.versions.blob_segments) == 1
        (number,) = store.db.versions.blob_segments
        name = blob_file_name(store.config.db_prefix, number)
        assert store.cloud_store.exists(name)
        assert not store.local_device.exists(name)
        store.close()


class TestUnsyncedBlobBeforeWalSync:
    def test_later_sync_batch_syncs_earlier_blob_bytes(self):
        """A sync=False diverted put followed by a sync=True put that diverts
        nothing: the WAL sync makes the earlier pointer record durable, so
        the blob bytes must be made durable first. Pre-fix this crashed
        recovery with 'referenced bytes extend past clean prefix'."""
        store = RocksMashStore.create(blob_config())
        large = big_value(0)
        store.put(key_of(0), large, sync=False)
        store.put(key_of(1), b"small", sync=True)  # below threshold, no divert

        store = store.reopen(crash=True)
        # One xWAL shard: the sync=True append synced the whole shard file,
        # so the earlier pointer record is durable — and must resolve.
        assert store.get(key_of(0)) == large
        assert store.get(key_of(1)) == b"small"
        report = check_db(store.env, store.config.db_prefix, store.config.options)
        assert report.errors == []
        store.close()

    def test_unsynced_pair_stays_consistently_volatile(self):
        """With no later sync at all, the pointer and its blob bytes are
        dropped together: recovery succeeds and the unacked write is simply
        absent."""
        store = RocksMashStore.create(blob_config())
        store.put(key_of(0), big_value(0), sync=False)
        store = store.reopen(crash=True)
        assert store.get(key_of(0)) is None
        store.close()


class TestSeparationBrand:
    def test_unbranded_store_refuses_separation(self):
        """Enabling separation on a store created without it is refused:
        a raw 32-byte value stored verbatim could start with the pointer
        magic and would be misread as a pointer on the read path."""
        plain = replace(
            blob_config(),
            options=replace(blob_config().options, blob_value_threshold=0),
        )
        store = RocksMashStore.create(plain)
        store.put(key_of(0), b"plain-value", sync=True)
        store.close()
        with pytest.raises(InvalidArgumentError):
            RocksMashStore(
                blob_config(),
                clock=store.clock,
                local_device=store.local_device,
                cloud_store=store.cloud_store,
                counters=store.counters,
            )

    def test_brand_persists_across_reopen_and_rewrite(self):
        """A store created with separation on is branded in the MANIFEST and
        keeps working across restarts (manifest rewrites carry the brand)."""
        store = RocksMashStore.create(blob_config())
        store.put(key_of(0), big_value(0), sync=True)
        store.flush()
        store.db.versions.rewrite_manifest()
        store = store.reopen()
        assert store.db.versions.blob_separation_enabled
        assert store.get(key_of(0)) == big_value(0)
        store = store.reopen(crash=True)
        assert store.db.versions.blob_separation_enabled
        store.close()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
