"""End-to-end serving-layer integration: open-loop load against sharded
and unsharded RocksMash nodes built from the experiment harness config."""

import pytest

from repro.bench.harness import HarnessKnobs, make_store, rocksmash_config
from repro.obs.trace import span_conserved
from repro.serve import (
    FrontendConfig,
    ServeConfig,
    ShardedDB,
    SingleStoreServer,
    run_open_loop,
)
from repro.workloads import ycsb

RECORDS = 600
OPERATIONS = 400
KNOBS = HarnessKnobs(cloud_level=1, block_cache_bytes=0, pcache_budget_bytes=4 << 10)


def sharded_node(shards):
    return ShardedDB(
        ServeConfig(base=rocksmash_config(KNOBS), num_shards=shards, key_space=RECORDS)
    )


def serve(server, workload="B", rate=500.0, capacity=0, operations=OPERATIONS):
    spec = ycsb.ALL_WORKLOADS[workload].scaled(RECORDS, operations)
    ycsb.load_phase(server if isinstance(server, ShardedDB) else server.store, spec)
    return run_open_loop(
        server, spec, FrontendConfig(arrival_rate=rate, queue_capacity=capacity)
    )


class TestServingEndToEnd:
    def test_sharded_and_single_agree_under_load(self):
        sharded = serve(sharded_node(4))
        single = serve(SingleStoreServer(make_store("rocksmash", KNOBS)))
        assert sharded.dropped == single.dropped == 0
        assert sharded.outcome_digest == single.outcome_digest
        assert sharded.completed == single.completed == OPERATIONS

    def test_more_shards_cut_the_tail_at_equal_offered_load(self):
        one = serve(sharded_node(1), workload="C", rate=120.0)
        eight = serve(sharded_node(8), workload="C", rate=120.0)
        assert one.outcome_digest == eight.outcome_digest
        assert eight.latency.percentile(99) < one.latency.percentile(99)
        assert eight.queue_wait.mean < one.queue_wait.mean

    def test_open_loop_knee_on_one_shard(self):
        # Below the knee the tail is near service time; far past it,
        # queue wait dominates by orders of magnitude.
        calm = serve(sharded_node(1), workload="C", rate=20.0)
        slammed = serve(sharded_node(1), workload="C", rate=2000.0)
        assert calm.queue_wait.percentile(99) < calm.service.percentile(99) * 20
        assert slammed.queue_wait.percentile(99) > calm.latency.percentile(99) * 10
        assert slammed.latency.percentile(99.9) >= slammed.latency.percentile(99)

    def test_deferred_maintenance_moves_flushes_off_the_latency_path(self):
        # Same write-heavy stream: the deferring node charges flush and
        # compaction to the busy timeline (maintenance_seconds > 0), so its
        # slowest *service* time stays well below the inline node's, whose
        # victim writes pay for whole flush+compaction cascades in-op.
        deferring = serve(sharded_node(1), workload="A", rate=30.0)
        inline_store = make_store("rocksmash", KNOBS)
        inline = serve(SingleStoreServer(inline_store), workload="A", rate=30.0)
        assert deferring.maintenance_seconds > 0
        assert inline.maintenance_seconds == 0  # inline: maintenance is in op latency
        assert deferring.service.max_seen < inline.service.max_seen
        assert deferring.outcome_digest == inline.outcome_digest

    def test_conservation_and_attribution_under_concurrency(self):
        node = sharded_node(4)
        result = serve(node, workload="A", rate=800.0)
        assert result.completed == OPERATIONS
        assert all(span_conserved(s) for s in node.tracer.spans)
        assert node.tracer.unattributed.total() == 0.0
        assert node.tracer.totals.total() > 0
        assert node.tracer.totals.local > 0

    def test_admission_control_bounds_waiting(self):
        unbounded = serve(sharded_node(2), workload="C", rate=5000.0)
        bounded = serve(sharded_node(2), workload="C", rate=5000.0, capacity=16)
        assert unbounded.dropped == 0 and bounded.dropped > 0
        assert bounded.queue_wait.max_seen < unbounded.queue_wait.max_seen
        assert bounded.drop_rate == pytest.approx(
            bounded.dropped / bounded.operations
        )

    def test_closed_loop_runner_drives_sharded_node_unchanged(self):
        # Facade parity: run_phase treats a ShardedDB like any store.
        spec = ycsb.WORKLOAD_B.scaled(RECORDS, 200)
        node = sharded_node(4)
        ycsb.load_phase(node, spec)
        result = ycsb.run_phase(node, spec, seed=17)
        assert result.store == "rocksmash-x4"
        assert sum(result.op_counts.values()) == 200
        assert result.throughput > 0
