"""Integration tests for scan range pruning and the prefetch pipeline."""

import pytest

from repro.bench.harness import HarnessKnobs, make_store
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.workloads import dbbench
from repro.workloads.generator import make_key


def l0_options():
    """Big memtable + high L0 trigger: explicit flushes pile up L0 files."""
    return Options(
        write_buffer_size=64 << 10,
        block_size=512,
        level0_file_num_compaction_trigger=100,
        block_cache_bytes=0,
    )


@pytest.fixture
def db():
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", l0_options())
    yield database
    database.close()


def fill_chunks(db, chunks=8, per_chunk=50):
    """One L0 file per chunk; chunk ``j`` owns keys ``{j:02d}k{i:03d}``."""
    for j in range(chunks):
        for i in range(per_chunk):
            db.put(f"{j:02d}k{i:03d}".encode(), f"v{j}.{i}".encode())
        db.flush()


class TestScanRangePruning:
    """Scans must not open readers for files disjoint from [begin, end)."""

    def test_forward_scan_opens_only_intersecting_l0(self, db):
        fill_chunks(db)
        assert db.get_property("repro.num-files-at-level0") == 8
        db.table_cache.clear()
        got = list(db.scan(b"03", b"04"))
        assert len(got) == 50
        assert all(k.startswith(b"03") for k, _ in got)
        assert len(db.table_cache) == 1

    def test_reverse_scan_opens_only_intersecting_l0(self, db):
        fill_chunks(db)
        db.table_cache.clear()
        got = list(db.scan_reverse(b"03", b"05"))
        assert len(got) == 100
        assert [k for k, _ in got] == sorted(
            (k for k, _ in got), reverse=True
        )
        assert len(db.table_cache) == 2

    def test_end_boundary_is_exclusive(self, db):
        fill_chunks(db)
        db.table_cache.clear()
        # end == chunk 4's smallest key: chunk 4's file must stay closed.
        got = list(db.scan(b"03k000", b"04k000"))
        assert len(got) == 50
        assert len(db.table_cache) == 1

    def test_unbounded_scan_still_sees_everything(self, db):
        fill_chunks(db)
        assert len(list(db.scan())) == 8 * 50


def cold_cloud_store(depth, records=600):
    """RocksMash with everything below L0 cloud-resident and caches cold."""
    store = make_store(
        "rocksmash",
        HarnessKnobs(
            scan_prefetch_depth=depth,
            cloud_level=1,
            block_cache_bytes=0,
            pcache_budget_bytes=4 << 10,
        ),
    )
    dbbench.fill_database(store, records)
    store.db.table_cache.clear()
    return store


class TestScanPrefetchPipeline:
    def test_results_identical_and_round_trips_hidden(self):
        base = cold_cloud_store(depth=0)
        piped = cold_cloud_store(depth=2)

        t0 = base.clock.now
        expect = base.scan()
        base_elapsed = base.clock.now - t0

        t0 = piped.clock.now
        got = piped.scan()
        piped_elapsed = piped.clock.now - t0

        assert got == expect
        assert base.tracer.event_count("prefetch_issue") == 0
        assert piped.tracer.event_count("prefetch_issue") > 0
        assert piped.tracer.event_count("prefetch_hit") > 0
        assert piped.tracer.event_count("seek_fanout") == 1
        assert piped_elapsed < base_elapsed

    def test_prefetch_replaces_demand_gets(self):
        base = cold_cloud_store(depth=0)
        piped = cold_cloud_store(depth=2)
        gets0 = base.counters.get("cloud.get_ops")
        base.scan()
        gets1 = piped.counters.get("cloud.get_ops")
        piped.scan()
        base_gets = base.counters.get("cloud.get_ops") - gets0
        piped_gets = piped.counters.get("cloud.get_ops") - gets1
        # Speculation is work-conserving on a full scan: every prefetched
        # table is consumed, so request counts do not inflate.
        assert piped_gets <= base_gets
        assert piped.tracer.event_count("prefetch_waste") == 0

    def test_short_scan_waste_bounded_by_depth(self):
        store = cold_cloud_store(depth=4)
        store.scan(make_key(0), None, limit=5)
        waste = store.tracer.event_count("prefetch_waste")
        assert waste <= 4
        issued = store.tracer.event_count("prefetch_issue")
        hits = store.tracer.event_count("prefetch_hit")
        assert hits + waste == issued

    def test_depth_zero_builds_no_pipeline(self):
        # The factory hook stays installed (the tuning controller may
        # raise the depth live), but at depth 0 it builds no pipeline and
        # a scan runs without any speculation.
        store = cold_cloud_store(depth=0)
        assert store.db.scan_pipeline_factory is not None
        assert store.db.scan_pipeline_factory(None, None) is None
        store.scan()
        for label in ("prefetch_issue", "prefetch_hit", "prefetch_waste"):
            assert store.tracer.event_count(label) == 0

    def test_reverse_scan_readahead_fires_on_cloud_tables(self):
        store = cold_cloud_store(depth=0)
        expect = store.scan()
        store.db.table_cache.clear()
        hits0 = store.tracer.event_count("readahead_hit")
        got = store.scan_reverse()
        assert got == expect[::-1]
        # The descending-streak detector turns the reverse scan's block
        # loads into buffered readahead hits instead of per-block GETs.
        assert store.tracer.event_count("readahead_hit") - hits0 > 50
