"""Integration tests: live iterators survive concurrent compactions."""

import pytest

from repro.lsm.db import DB
from repro.lsm.format import table_file_name
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options():
    return Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )


@pytest.fixture
def db():
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", small_options())
    yield database
    database.close()


class TestIteratorPinning:
    def test_scan_survives_compaction_churn(self, db):
        for i in range(2000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        it = db.scan()
        first = [next(it) for _ in range(5)]
        # Heavy overwrites trigger flushes + compactions mid-scan.
        for i in range(3000):
            db.put(f"k{i % 500:05d}".encode(), b"y" * 60)
        rest = list(it)
        keys = [k for k, _ in first + rest]
        assert keys == sorted(keys)
        assert len(keys) == 2000  # snapshot-consistent view

    def test_reverse_scan_survives_compaction_churn(self, db):
        for i in range(2000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        it = db.scan_reverse()
        first = [next(it) for _ in range(5)]
        for i in range(3000):
            db.put(f"k{i % 500:05d}".encode(), b"y" * 60)
        rest = list(it)
        keys = [k for k, _ in first + rest]
        assert keys == sorted(keys, reverse=True)
        assert len(keys) == 2000

    def test_deferred_files_deleted_after_iterator_closes(self, db):
        for i in range(2000):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        it = db.scan()
        next(it)
        for i in range(3000):
            db.put(f"k{i % 500:05d}".encode(), b"y" * 60)
        assert db._deferred_deletes, "compactions should have deferred deletions"
        it.close()
        assert not db._deferred_deletes
        # On-storage files exactly match the live version again.
        on_disk = {n for n in db.env.list_files("db/") if n.endswith(".sst")}
        live = {
            table_file_name("db/", m.number)
            for _, m in db.versions.current.all_files()
        }
        assert on_disk == live

    def test_nested_iterators(self, db):
        for i in range(1000):
            db.put(f"k{i:04d}".encode(), b"x" * 40)
        db.flush()
        outer = db.scan()
        next(outer)
        inner = db.scan()
        next(inner)
        for i in range(2000):
            db.put(f"k{i % 300:04d}".encode(), b"z" * 40)
        assert len(list(inner)) == 999
        assert len(list(outer)) == 999
        assert not db._pinned_versions

    def test_abandoned_iterator_cleaned_by_gc(self, db):
        import gc

        for i in range(500):
            db.put(f"k{i:04d}".encode(), b"x" * 40)
        db.flush()
        it = db.scan()
        next(it)
        del it  # abandoned without close()
        gc.collect()
        assert not db._pinned_versions

    def test_store_scan_during_background_churn(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(2000):
            store.put(f"k{i:05d}".encode(), b"x" * 60)
        it = store.db.scan()
        head = [next(it) for _ in range(10)]
        for i in range(2000):
            store.put(f"k{i % 400:05d}".encode(), b"y" * 60)
        tail = list(it)
        assert len(head) + len(tail) == 2000
        # Cache layers were only invalidated at true deletion time; reads
        # still work afterwards.
        for i in range(0, 2000, 211):
            assert store.get(f"k{i:05d}".encode()) is not None
