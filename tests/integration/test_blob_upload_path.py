"""Small-object upload fast path (ROADMAP item 1).

A sealed blob segment or demoted table at or below one multipart part must
cost exactly one cloud PUT — never an upload_part/complete_multipart pair,
whose initiate/complete round trips and request charges are pure overhead
for small objects. These tests pin the request accounting, not just the
resulting bytes.
"""

from dataclasses import replace

from repro.mash.store import RocksMashStore, StoreConfig


def small_blob_config(part_bytes: int = 8 << 20) -> StoreConfig:
    config = StoreConfig().small()
    return replace(
        config,
        options=replace(
            config.options,
            blob_value_threshold=64,
            blob_segment_bytes=1 << 10,
        ),
        placement=replace(config.placement, multipart_part_bytes=part_bytes),
    )


class TestSmallSegmentSeal:
    def test_small_segment_seal_is_exactly_one_put(self):
        store = RocksMashStore.create(small_blob_config())
        puts_before = store.counters.get("cloud.put_ops")
        # Enough oversized values to roll (seal) at least one 1 KiB segment.
        for i in range(30):
            store.put(f"k{i:04d}".encode(), b"v" * 200, sync=True)
        stats = store.db.blob_store.stats()
        assert stats["segments_sealed"] > 0
        # Every seal (1 KiB << the 8 MiB part size) took the single-PUT
        # path: one request per segment, zero multipart overhead.
        assert stats["single_put_uploads"] == stats["segments_sealed"]
        assert stats["multipart_uploads"] == 0
        assert (
            store.counters.get("cloud.put_ops") - puts_before
            >= stats["segments_sealed"]
        )

    def test_oversized_segment_streams_as_multipart(self):
        # Force the part size below the segment size: seals must multipart.
        store = RocksMashStore.create(small_blob_config(part_bytes=512))
        puts_before = store.counters.get("cloud.put_ops")
        for i in range(30):
            store.put(f"k{i:04d}".encode(), b"v" * 200, sync=True)
        stats = store.db.blob_store.stats()
        assert stats["segments_sealed"] > 0
        assert stats["multipart_uploads"] == stats["segments_sealed"]
        assert stats["single_put_uploads"] == 0
        # Each multipart seal costs >= 2 requests (parts + complete), so
        # the PUT count strictly exceeds one request per segment.
        assert (
            store.counters.get("cloud.put_ops") - puts_before
            > stats["segments_sealed"]
        )


class TestSmallTableDemotion:
    def test_demoted_small_tables_never_multipart(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 64, sync=False)
        store.flush()
        store.compact_range()
        summary = store.placement.tier_summary()
        assert summary["demotions"] > 0
        # .small() tables (4 KiB target) are far below the 8 MiB part size.
        assert summary["single_put_uploads"] == summary["demotions"]
        assert summary["multipart_uploads"] == 0
