"""Sorted-view equivalence: reads through the global sorted view must be
byte-for-byte identical to the merging-iterator baseline.

Three layers of proof:

* a hypothesis twin-DB drive — the same random op stream (puts, deletes,
  flushes, manual compactions, reopens) applied to a view-on DB and a
  view-off DB, with every scan / reverse scan / bounded scan / point get
  compared;
* the same twin drive on whole :class:`RocksMashStore` deployments under a
  cloud fault storm (every request can fail transiently and be retried);
* deterministic stale-view fallback — a crash injected between the
  flush/compaction commit and the view persist (or the MANIFEST view edit)
  must leave a store that *reports* the view unusable, serves exactly the
  committed data through the merging-iterator fallback, and repairs itself
  on the next flush.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.check import check_db
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.sim.failure import CrashPointFired, crash_points
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice

small_keys = st.binary(min_size=1, max_size=8)
small_values = st.binary(min_size=0, max_size=40)

view_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("del"), small_keys, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
        st.tuples(st.just("compact"), st.just(b""), st.just(b"")),
        st.tuples(st.just("reopen"), st.just(b""), st.just(b"")),
    ),
    max_size=60,
)


def tiny_options(**kw) -> Options:
    defaults = dict(
        write_buffer_size=1 << 10,
        block_size=256,
        max_bytes_for_level_base=4 << 10,
        target_file_size_base=1 << 10,
        block_cache_bytes=0,
    )
    defaults.update(kw)
    return Options(**defaults)


def compare_all_reads(viewed: DB, baseline: DB, keys):
    """Every read surface must agree byte-for-byte."""
    assert list(viewed.scan()) == list(baseline.scan())
    assert list(viewed.scan_reverse()) == list(baseline.scan_reverse())
    for k in keys:
        assert viewed.get(k) == baseline.get(k)
    bounds = sorted(keys)[:: max(1, len(keys) // 3)]
    for begin in bounds:
        for end in bounds:
            assert list(viewed.scan(begin, end)) == list(baseline.scan(begin, end))
            assert list(viewed.scan_reverse(begin, end)) == list(
                baseline.scan_reverse(begin, end)
            )


class TestTwinDBEquivalence:
    @given(view_ops)
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_view_reads_match_merging_iterator(self, ops):
        env_v = LocalEnv(LocalDevice(SimClock()))
        env_b = LocalEnv(LocalDevice(SimClock()))
        viewed = DB.open(env_v, "db/", tiny_options(sorted_view=True))
        baseline = DB.open(env_b, "db/", tiny_options())
        try:
            for kind, k, v in ops:
                if kind == "put":
                    viewed.put(k, v)
                    baseline.put(k, v)
                elif kind == "del":
                    viewed.delete(k)
                    baseline.delete(k)
                elif kind == "flush":
                    viewed.flush()
                    baseline.flush()
                elif kind == "compact":
                    viewed.compact_range()
                    baseline.compact_range()
                else:
                    # A plain DB has no view store: after reopen the view is
                    # stale by construction, which forces the fallback path
                    # until the next flush rebuilds it.
                    viewed.close()
                    baseline.close()
                    viewed = DB.open(env_v, "db/", tiny_options(sorted_view=True))
                    baseline = DB.open(env_b, "db/", tiny_options())
            keys = sorted({k for _, k, _ in ops if k}) or [b"probe"]
            compare_all_reads(viewed, baseline, keys)
            # Force the view current, then prove equivalence again with the
            # view guaranteed on the serving path.
            viewed.put(b"\x00seal", b"s")
            baseline.put(b"\x00seal", b"s")
            viewed.flush()
            baseline.flush()
            stats = viewed.get_property("repro.sorted-view-stats")
            assert "usable=yes" in stats
            before = viewed.view_stats["scan_hits"]
            compare_all_reads(viewed, baseline, keys)
            assert viewed.view_stats["scan_hits"] > before
        finally:
            viewed.close()
            baseline.close()


def storm_config(*, sorted_view: bool, seed: int) -> StoreConfig:
    cfg = StoreConfig().small()
    return replace(
        cfg,
        options=replace(cfg.options, sorted_view=sorted_view),
        cloud_error_rate=0.05,
        cloud_fault_seed=seed,
    )


class TestFaultStormEquivalence:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_store_reads_identical_under_cloud_faults(self, seed):
        """Transient cloud failures are retried on both paths; the view must
        not change a single served byte even though its GET pattern (and so
        its fault pattern) differs from the baseline's."""
        stores = {
            on: RocksMashStore.create(storm_config(sorted_view=on, seed=seed))
            for on in (True, False)
        }
        for step in range(400):
            k = b"key%04d" % (step * 7 % 90)
            for store in stores.values():
                if step % 11 == 3:
                    store.delete(k)
                else:
                    store.put(k, b"v%d" % step)
        for store in stores.values():
            store.flush()

        def all_reads(store):
            gets = [store.get(b"key%04d" % i) for i in range(0, 90, 3)]
            return (
                store.scan(),
                store.scan_reverse(),
                store.scan(b"key0010", b"key0060"),
                store.scan_reverse(b"key0010", b"key0060"),
                gets,
            )

        assert all_reads(stores[True]) == all_reads(stores[False])
        assert "usable=yes" in stores[True].db.get_property(
            "repro.sorted-view-stats"
        )
        # Clean restart: the view reloads from the pcache and still agrees.
        reopened = {on: store.reopen() for on, store in stores.items()}
        assert "usable=yes" in reopened[True].db.get_property(
            "repro.sorted-view-stats"
        )
        assert all_reads(reopened[True]) == all_reads(reopened[False])
        for store in reopened.values():
            store.close()


class TestStaleViewFallback:
    @pytest.mark.parametrize("site", ["view.before_persist", "view.before_manifest"])
    def test_crash_in_view_commit_window_falls_back_then_heals(self, site):
        crash_points.reset()
        cfg = storm_config(sorted_view=True, seed=0)
        cfg = replace(cfg, cloud_error_rate=0.0)
        store = RocksMashStore.create(cfg)
        model = {}
        for i in range(40):
            k, v = b"key%03d" % i, b"val%03d" % i
            model[k] = v
            store.put(k, v)
        store.flush()
        assert "usable=yes" in store.db.get_property("repro.sorted-view-stats")

        crash_points.arm(site)
        fired = False
        try:
            for i in range(40, 60):
                k, v = b"key%03d" % i, b"new%03d" % i
                # The WAL append commits before the flush that reaches the
                # crash site, so an in-flight put still survives the crash.
                model[k] = v
                store.put(k, v)
            store.flush()
        except CrashPointFired:
            fired = True
        finally:
            crash_points.disarm()
        assert fired

        store = store.reopen(crash=True)
        stats = store.db.get_property("repro.sorted-view-stats")
        assert "usable=no" in stats
        # The flush itself committed; only the view record is stale, and the
        # merging-iterator fallback serves the full committed state.
        assert dict(store.scan()) == model
        assert store.scan_reverse() == sorted(model.items(), reverse=True)
        fallbacks = store.db.view_stats["scan_fallbacks"]
        assert fallbacks >= 2
        report = check_db(store.env, store.config.db_prefix, store.config.options)
        assert report.errors == []
        # check_db flags the crash-legal staleness as a warning, not an error.
        assert any("sorted view" in w for w in report.warnings)

        # The next flush rebuilds and re-persists the view.
        store.put(b"key999", b"heal")
        model[b"key999"] = b"heal"
        store.flush()
        assert "usable=yes" in store.db.get_property("repro.sorted-view-stats")
        assert dict(store.scan()) == model
        assert store.scan_reverse() == sorted(model.items(), reverse=True)
        store.close()
        crash_points.reset()
