"""Integration tests for hot-file promotion (up-tiering)."""

import dataclasses

import pytest

from repro.mash.placement import PlacementConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.storage.env import LOCAL


def promo_store(budget=96 << 10, threshold=5.0, enabled=True):
    config = dataclasses.replace(
        StoreConfig().small(),
        placement=PlacementConfig(
            cloud_level=1,  # everything below L0 demotes -> cloud-heavy
            local_bytes_budget=budget,
            promotion_enabled=enabled,
            promotion_heat_threshold=threshold,
        ),
    )
    return RocksMashStore.create(config)


def fill(store, n=2500):
    for i in range(n):
        store.put(f"key{i:06d}".encode(), b"v" * 80)
    store.flush()


def hammer(store, lo, hi, rounds=30):
    """Concentrate reads on one key range to heat its file(s)."""
    for _ in range(rounds):
        for i in range(lo, hi, 3):
            store.get(f"key{i:06d}".encode())


class TestPromotion:
    def test_hot_file_promoted(self):
        store = promo_store()
        fill(store)
        assert store.placement.cloud_table_bytes() > 0
        hammer(store, 100, 200)
        # Promotion fires on the next topology change.
        store.put(b"trigger", b"flush")
        store.flush()
        assert store.placement.promotions > 0

    def test_promoted_file_is_local_and_readable(self):
        store = promo_store()
        fill(store)
        hammer(store, 100, 200)
        store.put(b"trigger", b"flush")
        store.flush()
        # Some table now local beyond what levels mandate; reads still correct.
        for i in range(100, 200, 7):
            assert store.get(f"key{i:06d}".encode()) == b"v" * 80
        local_tables = [
            name
            for name in store.env.list_files("db/")
            if name.endswith(".sst") and store.env.tier_of(name) == LOCAL
        ]
        assert local_tables

    def test_disabled_by_default(self):
        store = promo_store(enabled=False)
        fill(store)
        hammer(store, 100, 200)
        store.put(b"trigger", b"flush")
        store.flush()
        assert store.placement.promotions == 0

    def test_headroom_respected(self):
        store = promo_store(budget=96 << 10)
        fill(store)
        hammer(store, 0, 2500, rounds=3)  # heat everything
        store.put(b"trigger", b"flush")
        store.flush()
        budget = store.config.placement.local_bytes_budget
        headroom = store.config.placement.promotion_headroom
        assert store.placement.local_table_bytes() <= budget * max(headroom, 1.0)

    def test_cold_files_not_promoted(self):
        store = promo_store(threshold=1e9)  # unreachable threshold
        fill(store)
        hammer(store, 100, 200)
        store.put(b"trigger", b"flush")
        store.flush()
        assert store.placement.promotions == 0

    def test_promotion_requires_budget(self):
        with pytest.raises(ValueError):
            PlacementConfig(promotion_enabled=True)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            PlacementConfig(
                local_bytes_budget=1000, promotion_enabled=True, promotion_headroom=0.0
            )

    def test_promotion_speeds_up_hot_reads(self):
        from repro.mash.pcache import PCacheConfig

        def hot_read_time(enabled):
            store = promo_store(enabled=enabled)
            # Shrink the persistent cache below the hot set so tier
            # placement (not block caching) decides hot-read cost.
            store.config = dataclasses.replace(
                store.config, pcache=PCacheConfig(data_budget_bytes=2 << 10)
            )
            store.pcache.config = store.config.pcache
            fill(store)
            hammer(store, 100, 200, rounds=10)
            store.put(b"trigger", b"flush")
            store.flush()
            # Drop volatile caches so the tier placement dominates.
            if store.db.block_cache is not None:
                store.db.block_cache.clear()
            start = store.clock.now
            hammer(store, 100, 200, rounds=5)
            return store.clock.now - start

        with_promo = hot_read_time(True)
        without = hot_read_time(False)
        assert with_promo <= without
