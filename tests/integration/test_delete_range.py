"""Integration tests for delete_range and the describe() dashboard."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.mash.store import RocksMashStore, StoreConfig
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


@pytest.fixture
def db():
    options = Options(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        block_cache_bytes=0,
    )
    database = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", options)
    yield database
    database.close()


def fill(db, n=200):
    for i in range(n):
        db.put(f"key{i:05d}".encode(), f"v{i}".encode())


class TestDeleteRange:
    def test_basic(self, db):
        fill(db)
        deleted = db.delete_range(b"key00050", b"key00100")
        assert deleted == 50
        assert db.get(b"key00049") is not None
        assert db.get(b"key00050") is None
        assert db.get(b"key00099") is None
        assert db.get(b"key00100") is not None
        assert len(list(db.scan())) == 150

    def test_empty_range(self, db):
        fill(db, 10)
        assert db.delete_range(b"zzz0", b"zzz9") == 0

    def test_invalid_bounds(self, db):
        with pytest.raises(InvalidArgumentError):
            db.delete_range(b"b", b"a")
        with pytest.raises(InvalidArgumentError):
            db.delete_range(b"a", b"a")

    def test_atomic_single_batch(self, db):
        fill(db, 100)
        seq_before = db.versions.last_sequence
        db.delete_range(b"key00000", b"key00100")
        # All tombstones share one batch: sequence advanced by exactly 100.
        assert db.versions.last_sequence == seq_before + 100

    def test_across_flushed_levels(self, db):
        fill(db, 150)
        db.flush()
        db.compact_range()
        db.delete_range(b"key00000", b"key00075")
        assert len(list(db.scan())) == 75
        # Survives restart.
        db.flush()

    def test_snapshot_unaffected(self, db):
        fill(db, 50)
        snap = db.snapshot()
        db.delete_range(b"key00000", b"key00050")
        assert db.get(b"key00025", snapshot=snap) is not None
        assert db.get(b"key00025") is None
        db.release_snapshot(snap)

    def test_on_store_facade(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(300):
            store.put(f"key{i:05d}".encode(), b"v")
        deleted = store.db.delete_range(b"key00100", b"key00200")
        assert deleted == 100
        assert store.get(b"key00150") is None
        store2 = store.reopen(crash=True)
        assert store2.get(b"key00150") is None
        assert store2.get(b"key00250") == b"v"


class TestDescribe:
    def test_dashboard_renders(self):
        store = RocksMashStore.create(StoreConfig().small())
        for i in range(2000):
            store.put(f"key{i:05d}".encode(), b"v" * 60)
        for i in range(0, 2000, 50):
            store.get(f"key{i:05d}".encode())
        text = store.describe()
        for fragment in (
            "tiering",
            "local SSTables",
            "cloud SSTables",
            "pinned metadata",
            "hit ratio",
            "compactions=",
            "GET",
            "PUT",
        ):
            assert fragment in text, fragment
