"""Integration tests for universal (tiered) compaction."""

import random

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.universal import UniversalCompactionPicker
from repro.lsm.version import FileMetaData, Version, VersionEdit
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_VALUE, make_internal_key


def universal_options(**kw):
    defaults = dict(
        compaction_style="universal",
        write_buffer_size=4 << 10,
        block_size=512,
        target_file_size_base=1 << 20,  # runs are whole merge outputs
        level0_file_num_compaction_trigger=4,
        block_cache_bytes=0,
    )
    defaults.update(kw)
    return Options(**defaults)


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


def fmd(number, size):
    return FileMetaData(
        number,
        size,
        make_internal_key(b"a", 10, TYPE_VALUE),
        make_internal_key(b"z", 10, TYPE_VALUE),
    )


def version_with_runs(sizes, bottom_size=0, num_levels=7):
    v = Version(num_levels)
    edit = VersionEdit()
    for i, size in enumerate(sizes, start=1):
        edit.add_file(0, fmd(i, size))
    if bottom_size:
        edit.add_file(num_levels - 1, fmd(100, bottom_size))
    return v.apply(edit)


class TestPicker:
    def test_below_trigger_no_pick(self):
        picker = UniversalCompactionPicker(universal_options())
        assert picker.pick(version_with_runs([100, 100, 100])) is None

    def test_size_ratio_merges_newest_prefix(self):
        picker = UniversalCompactionPicker(universal_options())
        # Newest runs similar size, then a huge old run: merge the prefix.
        v = version_with_runs([100_000, 100, 110, 120, 130])  # file 5 newest
        compaction = picker.pick(v)
        assert compaction is not None
        numbers = [m.number for m in compaction.inputs]
        assert 1 not in numbers  # the huge oldest run is left alone
        assert compaction.output_level == 0
        assert compaction.allow_tombstone_drop is False

    def test_space_amp_triggers_full_merge(self):
        picker = UniversalCompactionPicker(universal_options())
        v = version_with_runs([1000, 1000, 1000, 1000], bottom_size=500)
        compaction = picker.pick(v)
        assert compaction.output_level == picker.bottom_level
        assert compaction.allow_tombstone_drop is True
        assert len(compaction.inputs) == 4
        assert len(compaction.overlaps) == 1

    def test_no_bottom_full_merge_after_accumulation(self):
        picker = UniversalCompactionPicker(universal_options())
        v = version_with_runs([100] * 8)  # 2x trigger, no bottom level
        compaction = picker.pick(v)
        assert compaction.output_level == picker.bottom_level

    def test_options_validation(self):
        with pytest.raises(ValueError):
            Options(compaction_style="fifo")
        with pytest.raises(ValueError):
            Options(universal_min_merge_width=1)


class TestEndToEnd:
    def test_correctness_under_churn(self, env):
        db = DB.open(env, "db/", universal_options())
        model = {}
        rng = random.Random(11)
        for step in range(4000):
            k = f"key{rng.randrange(400):04d}".encode()
            if rng.random() < 0.75:
                v = f"v{step}".encode() + b"x" * 40
                db.put(k, v)
                model[k] = v
            else:
                db.delete(k)
                model.pop(k, None)
        assert dict(db.scan()) == model
        assert db.compaction_stats.compactions > 0
        db.close()

    def test_runs_stay_bounded(self, env):
        db = DB.open(env, "db/", universal_options())
        for i in range(6000):
            db.put(f"key{i:05d}".encode(), b"x" * 60)
        db.flush()
        # Tiered merging keeps the run count near the trigger.
        assert db.versions.current.num_files(0) <= 8
        db.close()

    def test_full_merge_lands_on_bottom_level(self, env):
        options = universal_options()
        db = DB.open(env, "db/", options)
        for i in range(8000):
            db.put(f"key{i % 1000:05d}".encode(), b"x" * 60)
        db.flush()
        assert db.versions.current.num_files(options.num_levels - 1) > 0
        db.close()

    def test_tombstones_not_resurrected(self, env):
        """Partial merges must keep tombstones: a key deleted in a young run
        but present in an old run must stay deleted."""
        db = DB.open(env, "db/", universal_options())
        rng = random.Random(5)
        alive = {}
        for step in range(3000):
            k = f"key{rng.randrange(200):04d}".encode()
            if step % 3 == 0:
                db.delete(k)
                alive.pop(k, None)
            else:
                v = f"v{step}".encode()
                db.put(k, v)
                alive[k] = v
        for k in [f"key{i:04d}".encode() for i in range(200)]:
            assert db.get(k) == alive.get(k), k
        db.close()

    def test_recovery(self, env):
        db = DB.open(env, "db/", universal_options())
        for i in range(3000):
            db.put(f"key{i:05d}".encode(), b"x" * 60)
        env.device.crash()
        db2 = DB.open(env, "db/", universal_options())
        for i in range(0, 3000, 137):
            assert db2.get(f"key{i:05d}".encode()) == b"x" * 60
        db2.close()

    def test_write_amp_lower_than_leveled(self, env):
        """The textbook trade: universal rewrites fewer bytes per ingested
        byte than leveled."""

        def ingest(style):
            local_env = LocalEnv(LocalDevice(SimClock()))
            options = (
                universal_options()
                if style == "universal"
                else Options(
                    write_buffer_size=4 << 10,
                    block_size=512,
                    max_bytes_for_level_base=16 << 10,
                    target_file_size_base=4 << 10,
                    block_cache_bytes=0,
                )
            )
            db = DB.open(local_env, "db/", options)
            rng = random.Random(2)
            for _ in range(6000):
                db.put(f"key{rng.randrange(1500):05d}".encode(), b"x" * 60)
            written = db.compaction_stats.bytes_written
            db.close()
            return written

        assert ingest("universal") < ingest("leveled")

    def test_mash_store_with_universal_style(self):
        import dataclasses

        from repro.mash.store import RocksMashStore, StoreConfig

        config = StoreConfig().small()
        config = dataclasses.replace(
            config,
            options=dataclasses.replace(
                config.options, compaction_style="universal", target_file_size_base=1 << 20
            ),
        )
        store = RocksMashStore.create(config)
        for i in range(4000):
            store.put(f"key{i:05d}".encode(), b"v" * 60)
        for i in range(0, 4000, 173):
            assert store.get(f"key{i:05d}".encode()) == b"v" * 60
        # Full merges land on the bottom level -> demoted to the cloud.
        assert store.placement.cloud_table_bytes() > 0
        store2 = store.reopen(crash=True)
        assert store2.get(b"key00100") == b"v" * 60
