"""Smoke tests: every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_discovered():
    assert len(EXAMPLES) >= 3, "expected at least three example scripts"
