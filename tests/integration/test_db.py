"""Integration tests for the LSM DB: write/read/flush/compact/scan/snapshot."""

import pytest

from repro.errors import ClosedError, InvalidArgumentError
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def small_options(**kw):
    """Tiny thresholds so flush/compaction happen with small datasets."""
    defaults = dict(
        write_buffer_size=4 << 10,
        block_size=512,
        max_bytes_for_level_base=16 << 10,
        target_file_size_base=4 << 10,
        level0_file_num_compaction_trigger=4,
        block_cache_bytes=0,
    )
    defaults.update(kw)
    return Options(**defaults)


@pytest.fixture
def env():
    return LocalEnv(LocalDevice(SimClock()))


@pytest.fixture
def db(env):
    database = DB.open(env, "db/", small_options())
    yield database
    database.close()


def fill(db, n, *, prefix="key", vlen=100, start=0):
    for i in range(start, start + n):
        db.put(f"{prefix}{i:06d}".encode(), f"value-{i}-".encode() + b"x" * vlen)


class TestBasicOps:
    def test_put_get(self, db):
        db.put(b"hello", b"world")
        assert db.get(b"hello") == b"world"

    def test_get_missing(self, db):
        assert db.get(b"missing") is None

    def test_overwrite(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"

    def test_delete(self, db):
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_delete_nonexistent_ok(self, db):
        db.delete(b"never-there")
        assert db.get(b"never-there") is None

    def test_empty_value(self, db):
        db.put(b"k", b"")
        assert db.get(b"k") == b""

    def test_binary_keys_values(self, db):
        db.put(b"\x00\xff\x00", b"\x00" * 50)
        assert db.get(b"\x00\xff\x00") == b"\x00" * 50

    def test_write_batch_atomic(self, db):
        batch = WriteBatch()
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"a")
        db.write(batch)
        assert db.get(b"a") is None
        assert db.get(b"b") == b"2"

    def test_empty_batch_noop(self, db):
        seq = db.versions.last_sequence
        db.write(WriteBatch())
        assert db.versions.last_sequence == seq

    def test_closed_db_rejects_ops(self, env):
        db = DB.open(env, "x/", small_options())
        db.close()
        with pytest.raises(ClosedError):
            db.put(b"k", b"v")
        with pytest.raises(ClosedError):
            db.get(b"k")
        db.close()  # idempotent


class TestFlushAndRead:
    def test_data_survives_flush(self, db):
        fill(db, 50)
        db.flush()
        assert len(db.memtable) == 0
        for i in range(50):
            assert db.get(f"key{i:06d}".encode()) is not None

    def test_flush_empty_noop(self, db):
        count = db.flush_count
        db.flush()
        assert db.flush_count == count

    def test_automatic_flush_on_buffer_full(self, db):
        fill(db, 200)  # 200 * ~115B > 4KB several times over
        assert db.flush_count > 0
        assert db.get(b"key000000") is not None

    def test_read_across_memtable_and_tables(self, db):
        db.put(b"old", b"from-table")
        db.flush()
        db.put(b"new", b"from-memtable")
        assert db.get(b"old") == b"from-table"
        assert db.get(b"new") == b"from-memtable"

    def test_newest_version_wins_across_levels(self, db):
        db.put(b"k", b"v1")
        db.flush()
        db.put(b"k", b"v2")
        db.flush()
        db.put(b"k", b"v3")
        assert db.get(b"k") == b"v3"

    def test_tombstone_masks_older_table_value(self, db):
        db.put(b"k", b"v")
        db.flush()
        db.delete(b"k")
        db.flush()
        assert db.get(b"k") is None


class TestCompaction:
    def test_compaction_triggered_and_correct(self, env):
        db = DB.open(env, "db/", small_options())
        fill(db, 2000, vlen=50)
        assert db.compaction_stats.compactions + db.compaction_stats.trivial_moves > 0
        # All data still readable after compactions.
        for i in range(0, 2000, 97):
            assert db.get(f"key{i:06d}".encode()) is not None, i
        db.close()

    def test_compact_range_drops_tombstones(self, db):
        fill(db, 100, vlen=10)
        for i in range(100):
            db.delete(f"key{i:06d}".encode())
        db.compact_range()
        for i in range(100):
            assert db.get(f"key{i:06d}".encode()) is None
        # After full compaction of deleted data, tables should be tiny/empty.
        assert db.approximate_size() < 2000

    def test_levels_populated(self, env):
        db = DB.open(env, "db/", small_options())
        fill(db, 3000, vlen=50)
        db.flush()
        summary = db.level_summary()
        assert any(level >= 1 for level, _, _ in summary)
        db.close()

    def test_overwrites_reclaimed_by_compaction(self, db):
        for round_ in range(5):
            for i in range(200):
                db.put(f"key{i:03d}".encode(), f"round{round_}".encode() + b"x" * 50)
        db.compact_range()
        for i in range(200):
            assert db.get(f"key{i:03d}".encode()) == b"round4" + b"x" * 50


class TestScan:
    def test_full_scan_sorted(self, db):
        fill(db, 300, vlen=20)
        db.flush()
        fill(db, 100, prefix="mem", vlen=20)
        keys = [k for k, _ in db.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 400

    def test_range_scan(self, db):
        fill(db, 100, vlen=10)
        got = list(db.scan(b"key000010", b"key000020"))
        assert [k for k, _ in got] == [f"key{i:06d}".encode() for i in range(10, 20)]

    def test_scan_sees_newest_value(self, db):
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        assert dict(db.scan()) == {b"k": b"new"}

    def test_scan_skips_tombstones(self, db):
        fill(db, 20, vlen=10)
        db.flush()
        db.delete(b"key000005")
        keys = [k for k, _ in db.scan()]
        assert b"key000005" not in keys
        assert len(keys) == 19

    def test_scan_empty_db(self, db):
        assert list(db.scan()) == []

    def test_scan_open_ended_begin(self, db):
        fill(db, 10, vlen=10)
        got = list(db.scan(None, b"key000003"))
        assert len(got) == 3


class TestSnapshots:
    def test_snapshot_isolation(self, db):
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        assert db.get(b"k", snapshot=snap) == b"v1"
        db.release_snapshot(snap)

    def test_snapshot_sees_through_flush_and_compaction(self, db):
        fill(db, 100, vlen=10)
        snap = db.snapshot()
        for i in range(100):
            db.put(f"key{i:06d}".encode(), b"overwritten")
        db.compact_range()
        assert db.get(b"key000050", snapshot=snap) != b"overwritten"
        db.release_snapshot(snap)

    def test_snapshot_of_deleted_key(self, db):
        db.put(b"k", b"v")
        snap = db.snapshot()
        db.delete(b"k")
        db.compact_range()
        assert db.get(b"k") is None
        assert db.get(b"k", snapshot=snap) == b"v"
        db.release_snapshot(snap)

    def test_scan_at_snapshot(self, db):
        db.put(b"a", b"1")
        snap = db.snapshot()
        db.put(b"b", b"2")
        assert dict(db.scan(snapshot=snap)) == {b"a": b"1"}


class TestOpenSemantics:
    def test_error_if_exists(self, env):
        DB.open(env, "db/", small_options()).close()
        with pytest.raises(InvalidArgumentError):
            DB.open(env, "db/", small_options(), error_if_exists=True)

    def test_create_if_missing_false(self, env):
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            DB.open(env, "ghost/", small_options(), create_if_missing=False)

    def test_two_dbs_same_env(self, env):
        db1 = DB.open(env, "one/", small_options())
        db2 = DB.open(env, "two/", small_options())
        db1.put(b"k", b"from-db1")
        db2.put(b"k", b"from-db2")
        assert db1.get(b"k") == b"from-db1"
        assert db2.get(b"k") == b"from-db2"
        db1.close()
        db2.close()
