"""Blob-log garbage collection correctness.

GC must reclaim exactly what compaction proved dead — no more (live
pointers keep resolving, held-open scans survive segment deletion) and
no less (deleting every key eventually empties the blob tier).
"""

from dataclasses import replace

import pytest

from repro.lsm.blob import encode_blob_record
from repro.lsm.check import check_db
from repro.lsm.format import parse_file_name
from repro.mash.store import RocksMashStore, StoreConfig


def blob_config(*, ratio: float = 0.5) -> StoreConfig:
    config = StoreConfig().small()
    return replace(
        config,
        options=replace(
            config.options,
            blob_value_threshold=64,
            blob_segment_bytes=1 << 10,
            blob_gc_dead_ratio=ratio,
        ),
    )


def key_of(i: int) -> bytes:
    return f"key{i:05d}".encode()


def big_value(i: int, size: int = 150) -> bytes:
    return f"v{i:05d}-".encode() + b"x" * size


def blob_files(store: RocksMashStore) -> list[str]:
    return [
        name
        for name in store.env.list_files(store.config.db_prefix)
        if (parsed := parse_file_name(store.config.db_prefix, name))
        and parsed[0] == "blob"
    ]


class TestFullReclamation:
    def test_deleting_everything_reclaims_every_diverted_byte(self):
        store = RocksMashStore.create(blob_config())
        for i in range(60):
            store.put(key_of(i), big_value(i), sync=True)
        store.flush()
        diverted = store.db.blob_store.stats()["bytes_diverted"]
        assert diverted > 0
        for i in range(60):
            store.delete(key_of(i))
        store.flush()
        store.compact_range()

        stats = store.db.blob_store.stats()
        assert store.db.versions.blob_segments == {}
        assert blob_files(store) == []
        assert stats["bytes_reclaimed"] == diverted
        report = check_db(store.env, store.config.db_prefix, store.config.options)
        assert report.errors == []
        store.close()


class TestDeadAccounting:
    def test_dead_bytes_match_oracle(self):
        """Manifest-recorded dead bytes (plus bytes of fully-dead deleted
        segments) must equal an exact shadow account of every record whose
        pointer compaction dropped. ``ratio=1.0`` disables rewrites so the
        ledger is undisturbed."""
        store = RocksMashStore.create(blob_config(ratio=1.0))
        live: dict[bytes, bytes] = {}
        oracle_dead = 0
        for i in range(80):
            key = key_of(i % 13)
            value = big_value(i)
            if key in live:
                # The record length is sequence-independent, so a shadow
                # encode with sequence 0 sizes the dying record exactly.
                oracle_dead += len(encode_blob_record(0, key, live[key]))
            live[key] = value
            store.put(key, value, sync=True)
        for i in range(5):
            key = key_of(i)
            oracle_dead += len(encode_blob_record(0, key, live.pop(key)))
            store.delete(key)
        store.flush()
        store.compact_range()

        stats = store.db.blob_store.stats()
        recorded_dead = sum(
            dead for _total, dead in store.db.versions.blob_segments.values()
        )
        assert recorded_dead + stats["bytes_reclaimed"] == oracle_dead
        for key, value in live.items():
            assert store.get(key) == value
        store.close()


class TestConcurrentReaders:
    def test_held_open_scan_survives_segment_gc(self):
        """A scan opened before GC pins its version: segments the GC
        retires stay physically present until the scan finishes, so every
        pointer it yields still resolves."""
        store = RocksMashStore.create(blob_config())
        expected = {}
        for i in range(60):
            expected[key_of(i)] = big_value(i)
            store.put(key_of(i), expected[key_of(i)], sync=True)
        store.flush()
        store.compact_range()

        scan = store.db.scan()
        seen = [next(scan) for _ in range(10)]

        # Overwrite everything mid-scan; compaction kills the old segments.
        for i in range(60):
            store.put(key_of(i), big_value(i + 1000))
        store.flush()
        store.compact_range()
        assert store.db.blob_store.stats()["segments_deleted"] > 0
        assert store.db._deferred_blob_deletes, "GC should defer while pinned"

        seen += list(scan)  # drains and unpins
        assert dict(seen) == expected, "scan must see its pinned snapshot"
        assert not store.db._deferred_blob_deletes, "unpin drains deferred deletes"
        store.close()

    def test_interleaved_reads_never_dangle(self):
        """Reads interleaved with overwrite/delete/GC churn always return
        the current value — a dangling pointer would raise CorruptionError."""
        store = RocksMashStore.create(blob_config())
        live: dict[bytes, bytes] = {}
        for round_no in range(6):
            for i in range(30):
                key = key_of(i % 11)
                value = big_value(round_no * 100 + i)
                live[key] = value
                store.put(key, value)
                if i % 7 == 0:
                    probe = key_of((i + 3) % 11)
                    assert store.get(probe) == live.get(probe)
            if round_no % 2 == 1:
                doomed = key_of(round_no % 11)
                store.delete(doomed)
                live.pop(doomed, None)
            store.flush()
            store.compact_range()
            for key, value in live.items():
                assert store.get(key) == value
        assert store.db.blob_store.stats()["segments_deleted"] > 0
        report = check_db(store.env, store.config.db_prefix, store.config.options)
        assert report.errors == []
        store.close()


class TestRewrites:
    def test_partially_dead_segment_is_rewritten_once(self):
        """A segment past the dead ratio gets its live residue re-put and
        is not rewritten again; the re-put values stay readable."""
        store = RocksMashStore.create(blob_config(ratio=0.3))
        for i in range(12):
            store.put(key_of(i), big_value(i), sync=True)
        store.flush()
        # Kill most of the keys so sealed segments are mostly-dead.
        survivors = {key_of(i): big_value(i) for i in (1, 5, 9)}
        for i in range(12):
            if key_of(i) not in survivors:
                store.delete(key_of(i))
        store.flush()
        store.compact_range()
        stats = store.db.blob_store.stats()
        assert stats["gc_rewrites"] + stats["segments_deleted"] > 0
        for key, value in survivors.items():
            assert store.get(key) == value
        # The rewrite's own pointers must survive a restart too.
        store = store.reopen()
        for key, value in survivors.items():
            assert store.get(key) == value
        store.close()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
