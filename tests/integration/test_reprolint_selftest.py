"""reprolint self-tests against the real tree.

Two halves:

* the shipped tree is clean — ``python -m repro.lint src`` would exit 0;
* **mutation self-tests** — seeding one violation per rule into a copy of
  the real package makes the linter fail. This is the guard's guard: a
  refactor that quietly breaks a rule's detection (or its scoping) fails
  here, not months later when the invariant silently rots.
"""

import shutil
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def findings_for(root: Path) -> list:
    return lint_paths([root])


class TestRealTree:
    def test_shipped_tree_is_clean(self):
        findings = findings_for(SRC)
        locations = [f"{f.location()} {f.rule} {f.message}" for f in findings]
        assert findings == [], "\n".join(locations)

    def test_committed_baseline_is_empty(self):
        # Repository policy: no grandfathered debt — every deliberate
        # violation carries an inline suppression with a reason instead.
        import json

        doc = json.loads((REPO_ROOT / "reprolint.baseline.json").read_text())
        assert doc["version"] == 2
        assert doc["findings"] == {}


@pytest.fixture
def tree_copy(tmp_path):
    """A scratch copy of src/repro the mutation tests can deface."""
    dst = tmp_path / "repro"
    shutil.copytree(
        SRC / "repro", dst, ignore=shutil.ignore_patterns("__pycache__")
    )
    assert findings_for(tmp_path) == []  # the copy starts clean
    return dst


def mutate(path: Path, old: str, new: str) -> None:
    source = path.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor missing from {path.name}: {old!r}"
    path.write_text(source.replace(old, new), encoding="utf-8")


class TestMutationSelfTests:
    """Each seeded violation must be caught by exactly the right rule."""

    def test_deleting_diskfile_tier_charge_fails_rl002(self, tree_copy):
        # The issue's canonical mutation: drop one tracer mirror from the
        # directory-backed device's sync path and the charge-attribution
        # gate must fail on that file.
        mutate(
            tree_copy / "storage" / "diskfile.py",
            "        cost = self.model.write_cost(len(pending))\n"
            "        self.clock.advance(cost)\n"
            "        if self.tracer is not None:\n"
            '            self.tracer.charge("local", cost)\n',
            "        cost = self.model.write_cost(len(pending))\n"
            "        self.clock.advance(cost)\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [(f.rule, f.path.endswith("storage/diskfile.py")) for f in findings] == [
            ("RL002", True)
        ]

    def test_deleting_blob_read_tier_charge_fails_rl002(self, tree_copy):
        # Blob pointer resolution decodes off-LSM bytes on the CPU tier;
        # dropping its tracer mirror must trip the same gate.
        mutate(
            tree_copy / "mash" / "bloblog.py",
            "        cost = _DECODE_BASE_COST + _DECODE_COST_PER_BYTE * len(raw)\n"
            "        self.device.clock.advance(cost)\n"
            "        if tracer is not None:\n"
            '            tracer.charge("cpu", cost)\n',
            "        cost = _DECODE_BASE_COST + _DECODE_COST_PER_BYTE * len(raw)\n"
            "        self.device.clock.advance(cost)\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [(f.rule, f.path.endswith("mash/bloblog.py")) for f in findings] == [
            ("RL002", True)
        ]

    def test_removing_blob_gc_reach_site_fails_rl003(self, tree_copy):
        # The GC-before-delete crash site is what proves a segment delete
        # is recoverable; silently dropping it is a coverage regression.
        mutate(
            tree_copy / "mash" / "bloblog.py",
            'crash_points.reach("bloblog.gc_before_segment_delete")',
            "pass",
        )
        findings = findings_for(tree_copy.parent)
        # RL003 flags the registry drift; RL008 independently flags the
        # MANIFEST commit that lost its crash-site bracket (coverage gap).
        assert sorted({f.rule for f in findings}) == ["RL003", "RL008"]
        assert any(
            "bloblog.gc_before_segment_delete" in f.message for f in findings
        )

    def test_deleting_view_persist_tier_charge_fails_rl002(self, tree_copy):
        # Sorted-view persistence models its codec cost on the CPU tier;
        # dropping the tracer mirror must trip the charge-attribution gate.
        mutate(
            tree_copy / "mash" / "store.py",
            "        cost = _VIEW_CODEC_BASE_COST + _VIEW_CODEC_COST_PER_BYTE * len(payload)\n"
            "        self.clock.advance(cost)\n"
            '        self.tracer.charge("cpu", cost)\n'
            '        self.pcache.put_meta(self._name(stamp), "view", payload)\n',
            "        cost = _VIEW_CODEC_BASE_COST + _VIEW_CODEC_COST_PER_BYTE * len(payload)\n"
            "        self.clock.advance(cost)\n"
            '        self.pcache.put_meta(self._name(stamp), "view", payload)\n',
        )
        findings = findings_for(tree_copy.parent)
        assert [(f.rule, f.path.endswith("mash/store.py")) for f in findings] == [
            ("RL002", True)
        ]

    def test_wall_clock_read_in_sortedview_fails_rl001(self, tree_copy):
        # The view module is pure (no clock), but it still lives on the
        # simulated path: a wall-clock read sneaking in must be caught.
        path = tree_copy / "lsm" / "sortedview.py"
        path.write_text(
            path.read_text(encoding="utf-8")
            + "\nimport time\n\n_VIEW_T0 = time.time()\n",
            encoding="utf-8",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL001"}
        assert all(f.path.endswith("lsm/sortedview.py") for f in findings)

    def test_removing_view_persist_reach_site_fails_rl003(self, tree_copy):
        # The before-persist site is what proves a crash between the file
        # edit and the view persist leaves a recoverable (fallback) store.
        mutate(
            tree_copy / "lsm" / "db.py",
            'crash_points.reach("view.before_persist")',
            "pass",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL003"]
        assert "view.before_persist" in findings[0].message

    def test_wall_clock_read_fails_rl001(self, tree_copy):
        path = tree_copy / "util" / "crc.py"
        path.write_text(
            path.read_text(encoding="utf-8")
            + "\nimport time\n\n_T0 = time.time()\n",
            encoding="utf-8",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL001"}

    def test_rebroadened_pcache_recovery_except_fails_rl003(self, tree_copy):
        # Undo the PR's narrowing: a broad handler around the recovery loop
        # could swallow an injected CrashPointFired again.
        mutate(
            tree_copy / "mash" / "pcache.py",
            "except (CorruptionError, UnicodeDecodeError):",
            "except Exception:",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL003"}

    def test_removing_reach_site_fails_rl003_registry_check(self, tree_copy):
        # Deleting the only reach() of a registered site means the
        # crashmonkey matrix silently stops covering it.
        mutate(
            tree_copy / "lsm" / "db.py",
            'crash_points.reach("flush.before_manifest")',
            "pass",
        )
        findings = findings_for(tree_copy.parent)
        # Registry drift (RL003) plus the de-bracketed flush commit (RL008).
        assert sorted({f.rule for f in findings}) == ["RL003", "RL008"]
        assert any("flush.before_manifest" in f.message for f in findings)

    def test_ad_hoc_runtime_error_fails_rl004(self, tree_copy):
        path = tree_copy / "util" / "varint.py"
        path.write_text(
            path.read_text(encoding="utf-8")
            + '\n\ndef _explode():\n    raise RuntimeError("boom")\n',
            encoding="utf-8",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL004"}

    def test_real_io_import_on_sim_path_fails_rl005(self, tree_copy):
        path = tree_copy / "lsm" / "__init__.py"
        path.write_text(
            "import socket\n" + path.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL005"}

    def test_stripping_a_suppression_resurfaces_the_finding(self, tree_copy):
        # The deliberate wall-time print in the bench runner is only
        # tolerated because of its annotated suppression.
        mutate(
            tree_copy / "bench" / "__main__.py",
            "  # reprolint: ignore[RL001] -- host-side progress report\n",
            "\n",
        )
        findings = findings_for(tree_copy.parent)
        assert {f.rule for f in findings} == {"RL001"}


class TestInterproceduralMutations:
    """RL006–RL010 mutation self-tests: each seeded interprocedural bug is
    caught by exactly the expected rule on the expected file."""

    def test_branch_write_to_shared_self_state_fails_rl006(self, tree_copy):
        # Re-introduce the race this PR fixed: counting corrupt shards
        # inside a fork/join branch instead of folding after the join.
        mutate(
            tree_copy / "mash" / "xwal.py",
            "                collected.append((shard_ops, reader.tail_corrupt))\n",
            "                if reader.tail_corrupt:\n"
            "                    self.corrupt_shards += 1\n"
            "                collected.append((shard_ops, reader.tail_corrupt))\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [(f.rule, f.path.endswith("mash/xwal.py")) for f in findings] == [
            ("RL006", True)
        ]
        assert "corrupt_shards" in findings[0].message

    def test_branch_charging_parent_clock_fails_rl006(self, tree_copy):
        # Branch work must charge the branch's child clock; charging the
        # region's parent clock directly breaks the join-barrier math.
        mutate(
            tree_copy / "mash" / "xwal.py",
            "                child.advance(apply_cost)\n",
            "                self.device.clock.advance(apply_cost)\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL006"]
        assert "parent clock" in findings[0].message

    def test_deleting_blob_sync_before_wal_sync_fails_rl007(self, tree_copy):
        # A sync=True WAL append durably acks earlier pointer records, so
        # the blob bytes they reference must be synced first (S1).
        mutate(
            tree_copy / "mash" / "bloblog.py",
            "            if sync:\n"
            "                # A sync=True WAL append makes *every* earlier unsynced WAL\n"
            "                # record durable, including pointers from prior sync=False\n"
            "                # batches — their blob bytes must become durable first.\n"
            "                self.sync_active()\n",
            "            if sync:\n"
            "                pass\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL007"]
        assert "sync_active" in findings[0].message

    def test_deleting_view_persist_before_commit_fails_rl007(self, tree_copy):
        # The tag-9 sorted-view commit must be preceded by the view persist
        # (S3), else recovery records a stamp whose payload never existed.
        mutate(
            tree_copy / "lsm" / "db.py",
            "            self.view_store.persist(stamp, encode_view(view))\n",
            "            pass\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL007"]
        assert "persist" in findings[0].message

    def test_removing_crash_idempotent_annotation_fails_rl008(self, tree_copy):
        # A durable write inside a crash window must carry its recovery
        # contract; stripping the annotation resurfaces the obligation.
        mutate(
            tree_copy / "mash" / "bloblog.py",
            "                # crash-idempotent: the MANIFEST already forgot the segment;\n"
            "                # recovery's orphan sweep redoes a lost delete.\n"
            "                host.drop_blob_segment(number)\n",
            "                host.drop_blob_segment(number)\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL008"]
        assert "drop_blob_segment" in findings[0].message

    def test_removing_ingest_reach_bracket_fails_rl008(self, tree_copy):
        # Deleting the reach() that brackets the ingest commit reopens the
        # crash-coverage gap this PR closed (plus RL003 registry drift).
        mutate(
            tree_copy / "lsm" / "db.py",
            'crash_points.reach("ingest.before_manifest")',
            "pass",
        )
        findings = findings_for(tree_copy.parent)
        assert sorted({f.rule for f in findings}) == ["RL003", "RL008"]
        assert any("crash-coverage gap" in f.message for f in findings)

    def test_leaked_scan_generator_fails_rl009(self, tree_copy):
        # A scan generator bound to a name and dropped pins table readers
        # and iterator state for the rest of the process.
        path = tree_copy / "lsm" / "db.py"
        path.write_text(
            path.read_text(encoding="utf-8")
            + "\n\ndef _debug_first(db):\n"
            "    it = db.scan(None, None)\n"
            "    return next(it)\n",
            encoding="utf-8",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL009"]
        assert "never" in findings[0].message

    def test_dropped_fork_join_region_fails_rl009(self, tree_copy):
        # A region whose branches run but whose join() is deleted silently
        # loses the branches' clock contributions.
        mutate(
            tree_copy / "mash" / "xwal.py",
            "                collected.append((shard_ops, reader.tail_corrupt))\n"
            "        region.join()\n",
            "                collected.append((shard_ops, reader.tail_corrupt))\n",
        )
        findings = findings_for(tree_copy.parent)
        assert [(f.rule, f.path.endswith("mash/xwal.py")) for f in findings] == [
            ("RL009", True)
        ]
        assert "join" in findings[0].message

    def test_stale_suppression_id_fails_rl010(self, tree_copy):
        # A suppression naming a rule that does not exist suppresses
        # nothing — usually a typo or a retired rule id.
        mutate(
            tree_copy / "bench" / "__main__.py",
            "# reprolint: ignore[RL001] -- host-side progress report only",
            "# reprolint: ignore[RL001, RL099] -- host-side progress report only",
        )
        findings = findings_for(tree_copy.parent)
        assert [f.rule for f in findings] == ["RL010"]
        assert "RL099" in findings[0].message
