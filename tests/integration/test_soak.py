"""Kitchen-sink soak tests: every feature enabled at once, long op streams.

These runs combine compression, partitioned filters, scan readahead,
promotion, multi_get, checkpoints, reverse scans, delete_range, crash
cycles, and the consistency checker against a single dict model — the
closest thing to a production burn-in the simulation allows.
"""

import dataclasses
import random

import pytest

from repro.lsm.check import check_db
from repro.lsm.options import Options
from repro.mash.checkpoint import create_checkpoint, restore_checkpoint
from repro.mash.layout import LayoutConfig
from repro.mash.pcache import PCacheConfig
from repro.mash.placement import PlacementConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.mash.xwal import XWalConfig


def everything_on_config(style="leveled"):
    return StoreConfig(
        options=Options(
            write_buffer_size=4 << 10,
            block_size=512,
            max_bytes_for_level_base=16 << 10,
            target_file_size_base=(1 << 20) if style == "universal" else 4 << 10,
            block_cache_bytes=8 << 10,
            compression="zlib",
            filter_partitioning="block",
            compaction_style=style,
            max_manifest_file_size=8 << 10,
        ),
        placement=PlacementConfig(
            cloud_level=2,
            local_bytes_budget=64 << 10,
            promotion_enabled=True,
            promotion_heat_threshold=20.0,
        ),
        pcache=PCacheConfig(data_budget_bytes=32 << 10, admit_after_accesses=2),
        layout=LayoutConfig(aware=True, prewarm_heat_threshold=1.0),
        xwal=XWalConfig(num_shards=4),
    )


@pytest.mark.parametrize("style", ["leveled", "universal"])
def test_soak_all_features(style):
    store = RocksMashStore.create(everything_on_config(style))
    rng = random.Random(20260705)
    model: dict[bytes, bytes] = {}
    keyspace = [f"key{i:05d}".encode() for i in range(600)]

    for step in range(6000):
        action = rng.random()
        key = rng.choice(keyspace)
        if action < 0.55:
            value = f"v{step}|".encode() + b"data" * rng.randint(0, 30)
            store.put(key, value)
            model[key] = value
        elif action < 0.70:
            store.delete(key)
            model.pop(key, None)
        elif action < 0.85:
            assert store.get(key) == model.get(key), (step, key)
        elif action < 0.90:
            batch = rng.sample(keyspace, 12)
            got = store.multi_get(batch)
            for k in batch:
                assert got[k] == model.get(k), (step, k)
        elif action < 0.95:
            lo = rng.choice(keyspace)
            got = store.scan(lo, None, limit=20)
            expected = sorted((k, v) for k, v in model.items() if k >= lo)[:20]
            assert got == expected, step
        else:
            hi = rng.choice(keyspace)
            got = store.scan_reverse(None, hi, limit=20)
            expected = sorted(
                ((k, v) for k, v in model.items() if k < hi), reverse=True
            )[:20]
            assert got == expected, step

        if step in (2000, 4500):
            store = store.reopen(crash=True)
        if step == 3000:
            deleted = store.db.delete_range(b"key00100", b"key00150")
            doomed = [k for k in model if b"key00100" <= k < b"key00150"]
            assert deleted == len(doomed)
            for k in doomed:
                model.pop(k)
        if step == 3500:
            create_checkpoint(store, f"soak-{style}")
            snapshot_model = dict(model)

    # Final full agreement.
    assert dict(store.scan()) == model
    assert list(store.scan_reverse()) == sorted(model.items(), reverse=True)

    # The checkpoint replays the exact mid-run state.
    restored = restore_checkpoint(store.cloud_store, f"soak-{style}", store.config)
    assert dict(restored.scan()) == snapshot_model

    # Storage is structurally sound.
    store.close()
    report = check_db(store.env, "db/", store.config.options)
    assert report.ok, report.errors
