"""Property-based crash-recovery testing: random op sequences, a crash at a
random registered crash point (with a random skip and optional torn tail),
reopen, then the :class:`RecoveryOracle` invariants must hold.

Hypothesis owns the schedule — the op list, the armed site, the skip count,
and the torn-tail seed are all drawn values, so a failure shrinks toward a
minimal (ops, site, skip) triple and replays deterministically (the store
itself is a pure function of the schedule)."""

from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.lsm.check import check_db
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.mash.placement import PlacementConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.mash.xwal import XWalConfig
from repro.sim.failure import CrashPointFired, RecoveryOracle, crash_points

small_keys = st.binary(min_size=1, max_size=10)
small_values = st.binary(min_size=0, max_size=48)

crash_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("del"), small_keys, st.just(b"")),
        st.tuples(
            st.just("batch"),
            st.lists(st.tuples(small_keys, small_values), min_size=2, max_size=5),
            st.just(b""),
        ),
    ),
    min_size=10,
    max_size=120,
)


def crashy_config() -> StoreConfig:
    """Small thresholds so short schedules still reach flush/compact/demote."""
    return StoreConfig(
        options=Options(
            write_buffer_size=1 << 10,
            block_size=256,
            max_bytes_for_level_base=4 << 10,
            target_file_size_base=1 << 10,
            block_cache_bytes=0,
            max_manifest_file_size=1 << 10,
        ),
        placement=PlacementConfig(cloud_level=1, multipart_part_bytes=512),
        xwal=XWalConfig(num_shards=4),
    )


@seed(20260806)
@given(
    ops=crash_ops,
    site=st.sampled_from(sorted(crash_points.sites())),
    skip=st.integers(min_value=0, max_value=3),
    torn_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 16)),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_schedule_preserves_oracle_invariants(ops, site, skip, torn_seed):
    crash_points.reset()
    store = RocksMashStore.create(crashy_config())
    oracle = RecoveryOracle()
    crash_points.arm(site, skip=skip)
    fired = False
    try:
        for kind, a, b in ops:
            if kind == "put":
                oracle.put(store, a, b)
            elif kind == "del":
                oracle.delete(store, a)
            else:
                batch = WriteBatch()
                for k, v in a:
                    batch.put(k, v)
                oracle.write(store, batch)
    except CrashPointFired:
        fired = True
        oracle.crash()
    finally:
        crash_points.disarm()

    if fired:
        store = store.reopen(crash=True, torn_tail_seed=torn_seed)
    else:
        store = store.reopen()

    problems = oracle.verify(store)
    assert problems == []
    report = check_db(store.env, store.config.db_prefix, store.config.options)
    assert report.errors == []

    # The recovered store still works.
    oracle.put(store, b"\x00probe", b"alive")
    assert store.get(b"\x00probe") == b"alive"
    store.close()
    crash_points.reset()


@seed(20260807)
@given(
    ops=crash_ops,
    torn_seed=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_torn_tail_between_ops_never_loses_acked_writes(ops, torn_seed):
    """No armed site at all: crash between operations with a torn local
    tail. Everything acknowledged must survive byte-granular truncation of
    whatever was pending."""
    crash_points.reset()
    store = RocksMashStore.create(crashy_config())
    oracle = RecoveryOracle()
    for kind, a, b in ops:
        if kind == "put":
            oracle.put(store, a, b)
        elif kind == "del":
            oracle.delete(store, a)
        else:
            batch = WriteBatch()
            for k, v in a:
                batch.put(k, v)
            oracle.write(store, batch)
    store = store.reopen(crash=True, torn_tail_seed=torn_seed)
    assert oracle.verify(store) == []
    store.close()
