"""Property tests: WAL-time key–value separation never changes results.

A blob-separated store must be observably equivalent to a non-separated
baseline over any random op stream whose values straddle the threshold —
including overwrites, deletes followed by compaction (which drives
segment GC), and a storm of transient cloud read faults. A YCSB
execution must produce the identical outcome digest on both stores.
"""

import hashlib
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.mash.store import RocksMashStore, StoreConfig
from repro.workloads.ycsb import (
    WORKLOAD_A,
    WORKLOAD_F,
    apply_op,
    iter_ops,
    load_phase,
    outcome_digest_update,
)

KEY_SPACE = 40
THRESHOLDS = (48, 64)

ops = st.lists(
    st.one_of(
        # Values 0..96 B straddle both thresholds.
        st.tuples(
            st.just("put"),
            st.integers(0, KEY_SPACE - 1),
            st.binary(min_size=0, max_size=96),
        ),
        st.tuples(st.just("delete"), st.integers(0, KEY_SPACE - 1), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
        st.tuples(st.just("compact"), st.just(0), st.just(b"")),
    ),
    min_size=10,
    max_size=100,
)


def key_of(i: int) -> bytes:
    return b"key%04d" % i


def build_store(threshold: int, *, error: float = 0.0, seed: int = 0) -> RocksMashStore:
    """Small store; ``threshold=0`` disables separation (the baseline)."""
    config = StoreConfig().small()
    config = replace(
        config,
        options=replace(
            config.options,
            blob_value_threshold=threshold,
            blob_segment_bytes=1 << 10,
            blob_gc_dead_ratio=0.5,
        ),
        cloud_error_rate=error,
        cloud_fault_seed=seed,
        cloud_fault_op_prefixes=("cloud.get",),
    )
    return RocksMashStore.create(config)


def observe(store: RocksMashStore, workload) -> tuple:
    """Apply the ops, then collect every observable surface of the store."""
    for op, i, value in workload:
        if op == "put":
            store.put(key_of(i), value)
        elif op == "delete":
            store.delete(key_of(i))
        elif op == "flush":
            store.flush()
        elif op == "compact":
            store.compact_range()
    gets = [store.get(key_of(i)) for i in range(KEY_SPACE)]
    ranged = store.scan(key_of(KEY_SPACE // 4), key_of(3 * KEY_SPACE // 4))
    return gets, store.scan(), ranged


@settings(max_examples=20, deadline=None)
@given(ops=ops)
def test_separated_store_equivalent_to_baseline(ops):
    baseline = observe(build_store(0), ops)
    for threshold in THRESHOLDS:
        store = build_store(threshold)
        assert observe(store, ops) == baseline, f"threshold={threshold}"
        store.close()


@settings(max_examples=10, deadline=None)
@given(ops=ops, seed=st.integers(0, 2**16))
def test_equivalence_survives_cloud_fault_storm(ops, seed):
    """Transient cloud read faults (retried internally) must not change
    what a separated store returns — pointers resolve to the same bytes."""
    baseline = observe(build_store(0), ops)
    store = build_store(48, error=0.05, seed=seed)
    assert observe(store, ops) == baseline
    store.close()


@settings(max_examples=5, deadline=None)
@given(ops=ops)
def test_equivalence_survives_clean_reopen(ops):
    """Separation plus a restart: recovery re-adopts segments without
    changing a single observable byte."""
    store = build_store(48)
    baseline = observe(build_store(0), ops)
    assert observe(store, ops) == baseline
    store = store.reopen()
    gets = [store.get(key_of(i)) for i in range(KEY_SPACE)]
    ranged = store.scan(key_of(KEY_SPACE // 4), key_of(3 * KEY_SPACE // 4))
    assert (gets, store.scan(), ranged) == baseline
    store.close()


def ycsb_digest(store: RocksMashStore, spec, *, seed: int = 7) -> str:
    load_phase(store, spec)
    hasher = hashlib.sha256()
    for op in iter_ops(spec, seed=seed):
        outcome_digest_update(hasher, op, apply_op(store, op))
    return hasher.hexdigest()


def test_ycsb_outcome_digest_identical():
    """A real workload mix (reads, updates, scans, RMWs) hashes to the
    same outcome digest with and without separation."""
    for workload in (WORKLOAD_A, WORKLOAD_F):
        spec = replace(workload, value_size=200).scaled(120, 150)
        baseline = ycsb_digest(build_store(0), spec)
        separated_store = build_store(48)
        separated = ycsb_digest(separated_store, spec)
        assert separated == baseline, spec.name
        stats = separated_store.db.blob_store.stats()
        assert stats["records_diverted"] > 0, "workload never hit the blob log"
