"""Property-based tests for the engine extensions: reverse scans,
delete_range, universal compaction, compression, partitioned filters,
checkpoints."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice

small_keys = st.binary(min_size=1, max_size=10)
small_values = st.binary(min_size=0, max_size=50)

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("del"), small_keys, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
    ),
    max_size=60,
)

PROP_SETTINGS = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def tiny_options(**kw):
    defaults = dict(
        write_buffer_size=1 << 10,
        block_size=256,
        max_bytes_for_level_base=4 << 10,
        target_file_size_base=1 << 10,
        block_cache_bytes=0,
    )
    defaults.update(kw)
    return Options(**defaults)


def apply_ops(db, ops):
    model = {}
    for kind, k, v in ops:
        if kind == "put":
            db.put(k, v)
            model[k] = v
        elif kind == "del":
            db.delete(k)
            model.pop(k, None)
        else:
            db.flush()
    return model


class TestReverseScanProp:
    @given(ops_strategy)
    @settings(**PROP_SETTINGS)
    def test_reverse_is_mirror_of_forward(self, ops):
        db = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", tiny_options())
        apply_ops(db, ops)
        assert list(db.scan_reverse()) == list(db.scan())[::-1]
        db.close()

    @given(ops_strategy, small_keys, small_keys)
    @settings(**PROP_SETTINGS)
    def test_reverse_range_matches_model(self, ops, a, b):
        begin, end = min(a, b), max(a, b)
        db = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", tiny_options())
        model = apply_ops(db, ops)
        expected = sorted(
            ((k, v) for k, v in model.items() if begin <= k < end), reverse=True
        )
        assert list(db.scan_reverse(begin, end)) == expected
        db.close()


class TestDeleteRangeProp:
    @given(ops_strategy, small_keys, small_keys)
    @settings(**PROP_SETTINGS)
    def test_matches_model(self, ops, a, b):
        if a == b:
            return
        begin, end = min(a, b), max(a, b)
        db = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", tiny_options())
        model = apply_ops(db, ops)
        deleted = db.delete_range(begin, end)
        expected_deleted = [k for k in model if begin <= k < end]
        assert deleted == len(expected_deleted)
        for k in expected_deleted:
            model.pop(k)
        assert dict(db.scan()) == model
        db.close()


class TestUniversalProp:
    @given(ops_strategy)
    @settings(**PROP_SETTINGS)
    def test_universal_db_matches_dict(self, ops):
        db = DB.open(
            LocalEnv(LocalDevice(SimClock())),
            "db/",
            tiny_options(compaction_style="universal", target_file_size_base=1 << 20),
        )
        model = apply_ops(db, ops)
        assert dict(db.scan()) == model
        for k in {k for _, k, _ in ops if k}:
            assert db.get(k) == model.get(k)
        db.close()

    @given(ops_strategy)
    @settings(**PROP_SETTINGS)
    def test_universal_crash_durability(self, ops):
        device = LocalDevice(SimClock())
        db = DB.open(
            LocalEnv(device),
            "db/",
            tiny_options(compaction_style="universal", target_file_size_base=1 << 20),
        )
        model = apply_ops(db, ops)
        device.crash()
        db2 = DB.open(
            LocalEnv(device),
            "db/",
            tiny_options(compaction_style="universal", target_file_size_base=1 << 20),
        )
        assert dict(db2.scan()) == model
        db2.close()


class TestFormatVariantsProp:
    @given(ops_strategy)
    @settings(**PROP_SETTINGS)
    def test_all_format_variants_agree(self, ops):
        """Compression and filter layout must never change visible state."""
        variants = [
            tiny_options(),
            tiny_options(compression="zlib"),
            tiny_options(filter_partitioning="block"),
            tiny_options(compression="zlib", filter_partitioning="block"),
        ]
        states = []
        for options in variants:
            db = DB.open(LocalEnv(LocalDevice(SimClock())), "db/", options)
            apply_ops(db, ops)
            states.append(dict(db.scan()))
            db.close()
        assert all(state == states[0] for state in states[1:])


class TestCheckpointProp:
    @given(ops_strategy, ops_strategy)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_restore_reflects_snapshot_point(self, before_ops, after_ops):
        from repro.mash.checkpoint import create_checkpoint, restore_checkpoint
        from repro.mash.store import RocksMashStore, StoreConfig

        store = RocksMashStore.create(StoreConfig().small())
        model = {}
        for kind, k, v in before_ops:
            if kind == "put":
                store.put(k, v)
                model[k] = v
            elif kind == "del":
                store.delete(k)
                model.pop(k, None)
            else:
                store.flush()
        create_checkpoint(store, "prop")
        for kind, k, v in after_ops:
            if kind == "put":
                store.put(k, v + b"-mutated")
            elif kind == "del":
                store.delete(k)
        restored = restore_checkpoint(store.cloud_store, "prop", store.config)
        assert dict(restored.scan()) == model
