"""Property-based tests for core data structures (skiplist, bloom, block,
table, memtable, histogram, cache)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.block_cache import LRUBlockCache
from repro.lsm.memtable import GetResult, MemTable
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import TableReader
from repro.metrics.latency import LatencyHistogram
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.bloom import BloomFilterPolicy
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE, make_internal_key
from repro.util.skiplist import SkipList, default_compare

keys = st.binary(min_size=0, max_size=40)
values = st.binary(min_size=0, max_size=120)


class TestSkipList:
    @given(st.sets(keys, max_size=200), st.integers(0, 2**16))
    def test_matches_sorted_set(self, key_set, seed):
        sl = SkipList(seed=seed)
        for k in key_set:
            sl.insert(k)
        assert list(sl) == sorted(key_set)
        assert len(sl) == len(key_set)

    @given(st.sets(keys, min_size=1, max_size=100), keys)
    def test_seek_matches_bisect(self, key_set, target):
        sl = SkipList()
        for k in key_set:
            sl.insert(k)
        expected = sorted(k for k in key_set if k >= target)
        assert list(sl.seek(target)) == expected

    @given(st.sets(keys, min_size=1, max_size=100), keys)
    def test_contains_exact(self, key_set, probe):
        sl = SkipList()
        for k in key_set:
            sl.insert(k)
        assert sl.contains(probe) == (probe in key_set)


class TestBloom:
    @given(st.sets(keys, max_size=300), st.integers(2, 16))
    def test_no_false_negatives(self, key_set, bits):
        policy = BloomFilterPolicy(bits_per_key=bits)
        filt = policy.create_filter(sorted(key_set))
        assert all(policy.key_may_match(k, filt) for k in key_set)


class TestBlock:
    @given(
        st.dictionaries(keys, values, min_size=0, max_size=150),
        st.integers(1, 32),
    )
    def test_roundtrip_sorted(self, entries, restart_interval):
        items = sorted(entries.items())
        builder = BlockBuilder(restart_interval)
        for k, v in items:
            builder.add(k, v)
        block = Block(builder.finish(), default_compare)
        assert list(block) == items

    @given(
        st.dictionaries(keys, values, min_size=1, max_size=100),
        keys,
        st.integers(1, 16),
    )
    def test_seek_matches_reference(self, entries, target, restart_interval):
        items = sorted(entries.items())
        builder = BlockBuilder(restart_interval)
        for k, v in items:
            builder.add(k, v)
        block = Block(builder.finish(), default_compare)
        expected = [(k, v) for k, v in items if k >= target]
        assert list(block.seek(target)) == expected


class TestTable:
    @given(
        st.dictionaries(keys, values, min_size=1, max_size=120),
        st.integers(128, 2048),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_and_point_lookups(self, entries, block_size):
        from repro.util.encoding import InternalKeyOrder

        env = LocalEnv(LocalDevice(SimClock()))
        options = Options(block_size=block_size, block_cache_bytes=0)
        items = sorted(
            ((make_internal_key(k, 7, TYPE_VALUE), v) for k, v in entries.items()),
            key=lambda item: InternalKeyOrder(item[0]),
        )
        builder = TableBuilder(options, env.new_writable_file("t.sst"))
        for ik, v in items:
            builder.add(ik, v)
        builder.finish()
        reader = TableReader(options, env.new_random_access_file("t.sst"))
        assert list(reader) == items
        for user_key, v in entries.items():
            found = reader.get(make_internal_key(user_key, 100, TYPE_VALUE))
            assert found is not None and found[1] == v


class TestMemTable:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "del"]), keys, values),
            max_size=150,
        )
    )
    def test_matches_dict_model(self, ops):
        mt = MemTable()
        model: dict[bytes, bytes | None] = {}
        for seq, (kind, k, v) in enumerate(ops, start=1):
            if kind == "put":
                mt.add(seq, TYPE_VALUE, k, v)
                model[k] = v
            else:
                mt.add(seq, TYPE_DELETION, k, b"")
                model[k] = None
        for k, expected in model.items():
            result = mt.get(k, 1 << 40)
            if expected is None:
                assert result.state == GetResult.DELETED
            else:
                assert result.state == GetResult.FOUND
                assert result.value == expected

    @given(
        st.lists(st.tuples(keys, values), min_size=1, max_size=80),
        st.integers(1, 100),
    )
    def test_snapshot_reads_see_prefix(self, puts, at):
        mt = MemTable()
        for seq, (k, v) in enumerate(puts, start=1):
            mt.add(seq, TYPE_VALUE, k, v)
        at = min(at, len(puts))
        model = {}
        for k, v in puts[:at]:
            model[k] = v
        for k, expected in model.items():
            result = mt.get(k, at)
            assert result.state == GetResult.FOUND
            assert result.value == expected


class TestLatencyHistogram:
    @given(st.lists(st.floats(min_value=1e-9, max_value=50.0), min_size=1, max_size=300))
    def test_percentiles_monotone_and_bounded(self, samples):
        h = LatencyHistogram()
        for s in samples:
            h.record(s)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99 <= h.max_seen * 1.0001
        assert h.percentile(100) <= max(samples) * 1.0001
        assert h.count == len(samples)

    @given(st.lists(st.floats(min_value=1e-9, max_value=50.0), min_size=1, max_size=100))
    def test_mean_exact(self, samples):
        import math

        h = LatencyHistogram()
        for s in samples:
            h.record(s)
        assert math.isclose(h.mean, sum(samples) / len(samples), rel_tol=1e-9)

    @staticmethod
    def _state(h):
        return (h._counts, h.count, h.total, h.min_seen, h.max_seen)

    @given(
        st.lists(st.floats(min_value=1e-9, max_value=50.0), max_size=120),
        st.lists(st.floats(min_value=1e-9, max_value=50.0), max_size=120),
    )
    def test_merge_is_order_independent_and_matches_union(self, left, right):
        # Either operand (including an empty one) folded either way must
        # land on exactly the state of recording the union of samples.
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for s in left:
            a.record(s)
        for s in right:
            b.record(s)
        for s in left + right:
            union.record(s)
        ab = LatencyHistogram()
        ab.merge(a)
        ab.merge(b)
        ba = LatencyHistogram()
        ba.merge(b)
        ba.merge(a)
        assert self._state(ab) == self._state(ba)
        assert ab._counts == union._counts
        assert ab.count == union.count
        assert ab.min_seen == union.min_seen
        assert ab.max_seen == union.max_seen
        assert abs(ab.total - union.total) <= 1e-9 * max(1.0, union.total)

    def test_merge_rejects_different_bucketing(self):
        import pytest

        a = LatencyHistogram()
        b = LatencyHistogram(growth=1.5)
        with pytest.raises(ValueError):
            a.merge(b)


class TestLRUCache:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.binary(min_size=1, max_size=30)),
            max_size=100,
        ),
        st.integers(16, 200),
    )
    def test_never_exceeds_budget_and_serves_exact_bytes(self, ops, budget):
        cache = LRUBlockCache(budget)
        shadow: dict[int, bytes] = {}
        for offset, payload in ops:
            cache.put("f", offset, payload)
            if len(payload) <= budget:
                shadow[offset] = payload
            # An oversized payload is not admitted and must not disturb an
            # existing entry (real blocks are immutable, so a conflicting
            # payload at the same offset cannot occur in practice).
            assert cache.used_bytes <= budget
            got = cache.get("f", offset)
            assert got is None or got == shadow[offset]
