"""Property tests for the serving layer.

The headline property: a :class:`ShardedDB` over any shard count returns
byte-identical results to a single store executing the same op stream —
point reads, cross-shard scans (router-boundary begin keys included), and
the running outcome digest. Plus the reentrancy regression: spans recorded
under per-request clock scoping still satisfy the tier-conservation
invariant ``local + cloud + cpu == elapsed``.
"""

import hashlib
from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mash.store import RocksMashStore, StoreConfig
from repro.obs.trace import span_conserved
from repro.serve import FrontendConfig, ServeConfig, ShardedDB, run_open_loop
from repro.workloads import ycsb
from repro.workloads.generator import make_key

KEY_SPACE = 64

# Key indices biased toward router boundaries: with 2/4/8 shards over a
# 64-key space, boundaries sit at multiples of 8 — sample those (and their
# neighbours) heavily alongside the full range.
boundary_indices = st.one_of(
    st.sampled_from([idx + d for idx in range(8, KEY_SPACE, 8) for d in (-1, 0, 1)]),
    st.integers(0, KEY_SPACE + 8),  # a few past the keyspace too
)

serve_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), boundary_indices, st.binary(min_size=1, max_size=24)),
        st.tuples(st.just("del"), boundary_indices, st.just(b"")),
        st.tuples(st.just("get"), boundary_indices, st.just(b"")),
        st.tuples(st.just("scan"), boundary_indices, st.integers(1, 20)),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    max_size=60,
)


def apply(store, kind, idx, extra):
    if kind == "put":
        store.put(make_key(idx), extra)
        return None
    if kind == "del":
        store.delete(make_key(idx))
        return None
    if kind == "get":
        return store.get(make_key(idx))
    if kind == "scan":
        return store.scan(make_key(idx), None, limit=extra)
    store.flush()
    return None


class TestShardedEquivalence:
    @given(serve_ops, st.sampled_from([2, 4, 8]))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_sharded_matches_single_store(self, ops, shards):
        single = RocksMashStore.create(StoreConfig().small())
        node = ShardedDB(
            ServeConfig(
                base=StoreConfig().small(), num_shards=shards, key_space=KEY_SPACE
            )
        )
        for kind, idx, extra in ops:
            assert apply(single, kind, idx, extra) == apply(node, kind, idx, extra), (
                f"divergence at {kind} {idx}"
            )
        # Full-range and boundary-straddling scans agree at the end too.
        assert node.scan(None, None) == single.scan(None, None)
        for boundary in node.router.boundaries:
            assert node.scan(boundary, None, limit=5) == single.scan(
                boundary, None, limit=5
            )
            assert node.scan(None, boundary) == single.scan(None, boundary)

    @given(st.integers(0, 2**32 - 1), st.sampled_from([2, 4]))
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_ycsb_digest_identical_sharded_vs_single(self, seed, shards):
        spec = ycsb.WORKLOAD_A.scaled(80, 60)

        def digest(store):
            ycsb.load_phase(store, spec)
            hasher = hashlib.sha256()
            for op in ycsb.iter_ops(spec, seed=seed):
                ycsb.outcome_digest_update(
                    hasher, op, ycsb.apply_op(store, op)
                )
            return hasher.hexdigest()

        single = RocksMashStore.create(StoreConfig().small())
        node = ShardedDB(
            ServeConfig(base=StoreConfig().small(), num_shards=shards, key_space=80)
        )
        assert digest(single) == digest(node)

    @given(serve_ops, st.sampled_from([2, 4]))
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_blob_separated_sharded_matches_single(self, ops, shards):
        """Sharding composes with key–value separation: each shard runs its
        own blob log namespaced under its ``db/sNN/`` prefix, GC rides the
        deferred-maintenance flush path, and results stay byte-identical to
        an unsharded blob-enabled store."""
        base = StoreConfig().small()
        base = replace(
            base,
            options=replace(
                base.options,
                blob_value_threshold=16,
                blob_segment_bytes=1 << 10,
            ),
        )
        single = RocksMashStore.create(base)
        node = ShardedDB(ServeConfig(base=base, num_shards=shards, key_space=KEY_SPACE))
        for kind, idx, extra in ops:
            assert apply(single, kind, idx, extra) == apply(node, kind, idx, extra), (
                f"divergence at {kind} {idx}"
            )
        assert node.scan(None, None) == single.scan(None, None)
        # Each shard's segments live under its own namespace — never a
        # sibling's, never the unsharded layout.
        for index, shard in enumerate(node.shards):
            prefix = f"db/s{index:02d}/"
            for name in shard.env.list_files(prefix):
                if name.endswith(".blob"):
                    assert name.startswith(prefix), name
        if any(kind == "put" and len(extra) >= 16 for kind, _idx, extra in ops):
            assert sum(
                shard.db.blob_store.stats()["records_diverted"]
                for shard in node.shards
            ) > 0

    def test_blob_gc_runs_through_deferred_maintenance(self):
        """With ``defer_maintenance`` on, blob GC happens when the deferred
        flush replays — dead segments are reclaimed without any direct
        compaction call, and the surviving hot keys keep resolving."""
        base = StoreConfig().small()
        base = replace(
            base,
            options=replace(
                base.options,
                blob_value_threshold=64,
                blob_segment_bytes=1 << 10,
            ),
        )
        node = ShardedDB(ServeConfig(base=base, num_shards=2, key_space=KEY_SPACE))
        live = {}
        for i in range(400):
            key = make_key(i % 16)
            value = f"v{i:04d}-".encode() + b"b" * 150
            live[key] = value
            node.put(key, value)
        assert node.maintenance_events > 0
        deleted = sum(
            shard.db.blob_store.stats()["segments_deleted"] for shard in node.shards
        )
        assert deleted > 0, "deferred maintenance never GC'd a dead segment"
        for key, value in live.items():
            assert node.get(key) == value
        node.close()


class TestReentrantConservation:
    @given(st.integers(0, 2**32 - 1), st.floats(200.0, 20_000.0))
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_spans_conserve_under_request_scoping(self, seed, rate):
        """Regression: per-request clock scoping (overlapping in-flight
        spans, fork/join fan-out inside request scopes, deferred
        maintenance replayed on request clocks) never breaks
        local + cloud + cpu == elapsed on any recorded span."""
        spec = ycsb.WORKLOAD_A.scaled(60, 50)
        node = ShardedDB(
            ServeConfig(base=StoreConfig().small(), num_shards=4, key_space=60)
        )
        ycsb.load_phase(node, spec)
        run_open_loop(
            node,
            spec,
            FrontendConfig(arrival_rate=rate, arrival_seed=seed, op_seed=seed),
        )
        assert len(node.tracer.spans) > 0
        for span in node.tracer.spans:
            assert span_conserved(span), (
                f"span {span.op} drifted: tiers={span.tiers.total()} "
                f"elapsed={span.elapsed}"
            )
        # Nothing leaked outside spans except possibly load-phase charges
        # (puts there run inside spans as well, so the tracer's totals are
        # fully attributed).
        assert node.tracer.unattributed.total() == 0.0
