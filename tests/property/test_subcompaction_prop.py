"""Property: parallel compaction produces exactly the serial DB contents.

Subcompactions change file cut points and simulated timing — never what the
database contains. For random workloads (overwrites, deletes, skew), a DB
compacted with ``max_subcompactions=4`` must scan identically to one
compacted serially.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.compaction import pick_subcompaction_boundaries
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice


def tiny_options(**overrides) -> Options:
    base = dict(
        write_buffer_size=2 << 10,
        block_size=256,
        max_bytes_for_level_base=8 << 10,
        target_file_size_base=2 << 10,
        block_cache_bytes=0,
    )
    base.update(overrides)
    return Options(**base)


ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.integers(min_value=0, max_value=200),
        st.binary(min_size=0, max_size=40),
    ),
    min_size=30,
    max_size=300,
)


def apply_and_compact(operations, parallelism: int) -> list[tuple[bytes, bytes]]:
    env = LocalEnv(LocalDevice(SimClock()))
    db = DB.open(env, "db/", tiny_options(max_subcompactions=parallelism))
    try:
        for op, keyno, value in operations:
            key = f"k{keyno:05d}".encode()
            if op == "put":
                db.put(key, value)
            else:
                db.delete(key)
        db.compact_range(None, None)
        return list(db.scan(None, None))
    finally:
        db.close()


class TestParallelEqualsSerial:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops)
    def test_contents_identical(self, operations):
        serial = apply_and_compact(operations, parallelism=1)
        parallel = apply_and_compact(operations, parallelism=4)
        assert parallel == serial

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops)
    def test_parallel_is_deterministic(self, operations):
        first = apply_and_compact(operations, parallelism=4)
        second = apply_and_compact(operations, parallelism=4)
        assert first == second


def _meta(number: int, smallest: bytes, largest: bytes) -> FileMetaData:
    from repro.util.encoding import MAX_SEQUENCE, TYPE_VALUE, make_internal_key

    return FileMetaData(
        number=number,
        file_size=1024,
        smallest=make_internal_key(smallest, MAX_SEQUENCE, TYPE_VALUE),
        largest=make_internal_key(largest, 1, TYPE_VALUE),
    )


key_ranges = st.lists(
    st.tuples(st.binary(min_size=1, max_size=8), st.binary(min_size=1, max_size=8)),
    min_size=0,
    max_size=12,
)


class TestBoundaryProperties:
    @settings(max_examples=100, deadline=None)
    @given(key_ranges, st.integers(min_value=1, max_value=10))
    def test_boundaries_sorted_unique_interior(self, ranges, max_parts):
        files = [
            _meta(i + 1, min(a, b), max(a, b)) for i, (a, b) in enumerate(ranges)
        ]
        boundaries = pick_subcompaction_boundaries(files, max_parts)
        assert len(boundaries) <= max_parts - 1 if max_parts > 1 else not boundaries
        assert boundaries == sorted(set(boundaries))
        if files:
            lo = min(f.smallest_user_key for f in files)
            hi = max(f.largest_user_key for f in files)
            for boundary in boundaries:
                assert lo < boundary < hi
