"""Property tests for xWAL torn tails and shard-record corruption.

The xWAL's correctness argument under crash is *per-key prefix
consistency*: key-hash partitioning puts all updates of one key in one
shard, so truncating any shard at any byte offset can only drop a suffix
of that key's update sequence — never an interior update. These tests let
hypothesis tear every shard of a generation at arbitrary byte offsets and
check that the replayed ops for each key are exactly a prefix of what was
written, and that ``corrupt_shards`` counts the shards whose tail was torn
mid-frame.

Separately, :func:`decode_shard_record` must reject every strict
truncation or extension of a valid encoding with ``CorruptionError`` —
the paths a torn frame-CRC miss would otherwise fall through to.
"""

import pytest
from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.format import xlog_file_name
from repro.lsm.wal import LogReader
from repro.lsm.write_batch import WriteBatch
from repro.mash.xwal import (
    XWalConfig,
    XWalReplayer,
    XWalWriter,
    decode_shard_record,
    encode_shard_record,
    shard_of,
)
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice
from repro.util.encoding import TYPE_DELETION, TYPE_VALUE

small_keys = st.binary(min_size=1, max_size=8)
small_values = st.binary(min_size=0, max_size=32)

wal_batches = st.lists(
    st.lists(
        st.one_of(
            st.tuples(st.just("put"), small_keys, small_values),
            st.tuples(st.just("del"), small_keys, st.just(b"")),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=20,
)


def _write_generation(env, device, batches, *, shards, sync_last):
    """Write batches into generation 1; return the per-key op sequences."""
    config = XWalConfig(num_shards=shards)
    writer = XWalWriter(env, device, "db/", 1, config)
    per_key: dict[bytes, list[tuple[int, int, bytes]]] = {}
    seq = 1
    for i, ops in enumerate(batches):
        batch = WriteBatch()
        for kind, key, value in ops:
            if kind == "put":
                batch.put(key, value)
            else:
                batch.delete(key)
        batch.sequence = seq
        s = seq
        for op in batch:
            per_key.setdefault(op.key, []).append((s, op.value_type, op.value))
            s += 1
        seq += len(batch)
        last = i == len(batches) - 1
        writer.add_record(batch.encode(), sync=sync_last or not last)
    return config, per_key


@seed(20260808)
@given(
    batches=wal_batches,
    shards=st.integers(min_value=1, max_value=6),
    fractions=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=6, max_size=6
    ),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_torn_shards_keep_per_key_prefix_consistency(batches, shards, fractions):
    device = LocalDevice(SimClock())
    env = LocalEnv(device)
    config, per_key = _write_generation(
        env, device, batches, shards=shards, sync_last=True
    )

    # Tear each shard at a hypothesis-chosen byte offset. write_file is the
    # atomic create-or-replace primitive, so this models exactly "the file
    # ends here now".
    expected_corrupt = 0
    for shard in range(shards):
        name = xlog_file_name("db/", 1, shard)
        if not env.file_exists(name):
            continue
        data = env.read_file(name)
        keep = int(len(data) * fractions[shard])
        env.write_file(name, data[:keep])
        torn = LogReader(data[:keep])
        for _ in torn:
            pass
        if torn.tail_corrupt:
            expected_corrupt += 1

    replayer = XWalReplayer(env, device, "db/", config)
    replayed: dict[bytes, list[tuple[int, int, bytes]]] = {}
    for op_seq, value_type, key, value in replayer.replay(1):
        replayed.setdefault(key, []).append((op_seq, value_type, value))

    assert replayer.corrupt_shards == expected_corrupt
    for key, got in replayed.items():
        want = per_key[key]
        got.sort()
        # Everything recovered for a key is a *prefix* of its written
        # update sequence — a torn shard may lose the newest updates but
        # can never skip an interior one or invent data.
        assert got == want[: len(got)]


@seed(20260809)
@given(batches=wal_batches, shards=st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_untorn_replay_is_complete_and_exact(batches, shards):
    device = LocalDevice(SimClock())
    env = LocalEnv(device)
    config, per_key = _write_generation(
        env, device, batches, shards=shards, sync_last=True
    )
    replayer = XWalReplayer(env, device, "db/", config)
    replayed: dict[bytes, list[tuple[int, int, bytes]]] = {}
    for op_seq, value_type, key, value in replayer.replay(1):
        assert shard_of(key, shards) == shard_of(key, shards)
        replayed.setdefault(key, []).append((op_seq, value_type, value))
    assert replayer.corrupt_shards == 0
    for key, want in per_key.items():
        got = sorted(replayed.get(key, []))
        assert got == want
    assert replayer.records_replayed == sum(len(v) for v in per_key.values())


@seed(20260810)
@given(batches=wal_batches, shards=st.integers(min_value=2, max_value=6), crash_seed=st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_torn_tail_device_crash_preserves_prefix(batches, shards, crash_seed):
    """Same property, but the tear comes from the device's own
    byte-granular torn-tail crash on an unsynced final batch."""
    import random

    device = LocalDevice(SimClock())
    env = LocalEnv(device)
    config, per_key = _write_generation(
        env, device, batches, shards=shards, sync_last=False
    )
    device.crash(torn_tail=True, rng=random.Random(crash_seed))

    replayer = XWalReplayer(env, device, "db/", config)
    replayed: dict[bytes, list[tuple[int, int, bytes]]] = {}
    for op_seq, value_type, key, value in replayer.replay(1):
        replayed.setdefault(key, []).append((op_seq, value_type, value))
    for key, got in replayed.items():
        got.sort()
        assert got == per_key[key][: len(got)]


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just(TYPE_VALUE), small_keys, small_values),
        st.tuples(st.just(TYPE_DELETION), small_keys, st.just(b"")),
    ),
    min_size=0,
    max_size=8,
).map(lambda ops: [(1000 + i, t, k, v) for i, (t, k, v) in enumerate(ops)])


class TestDecodeShardRecordCorruption:
    @seed(20260811)
    @given(ops=ops_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_strict_truncation_raises(self, ops, data):
        encoded = encode_shard_record(ops)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(CorruptionError):
            decode_shard_record(encoded[:cut])

    @seed(20260812)
    @given(ops=ops_strategy, junk=st.binary(min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_trailing_junk_raises(self, ops, junk):
        encoded = encode_shard_record(ops)
        with pytest.raises(CorruptionError):
            decode_shard_record(encoded + junk)

    @seed(20260813)
    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, ops):
        assert decode_shard_record(encode_shard_record(ops)) == ops
