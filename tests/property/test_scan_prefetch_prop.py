"""Property tests: the scan-prefetch pipeline never changes scan results.

For any random workload — and any crash-free storm of transient cloud
read faults — scans must return byte-identical results at every
``scan_prefetch_depth``, and tier attribution must still conserve elapsed
time on every span even when prefetch branches are joined late, reaped,
or abandoned.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.mash.placement import PlacementConfig
from repro.mash.pcache import PCacheConfig
from repro.mash.store import RocksMashStore, StoreConfig
from repro.obs.trace import span_conserved

DEPTHS = (0, 1, 4)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 60), st.binary(min_size=1, max_size=200)),
        st.tuples(st.just("delete"), st.integers(0, 60), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    min_size=5,
    max_size=80,
)

scans = st.lists(
    st.tuples(st.integers(0, 60), st.integers(1, 30)),
    min_size=1,
    max_size=6,
)


def key_of(i: int) -> bytes:
    return b"key%04d" % i


def build_store(depth: int, error_rate: float, seed: int) -> RocksMashStore:
    """Cloud-heavy small store; faults (if any) hit only read requests."""
    config = StoreConfig().small()
    config = replace(
        config,
        options=replace(config.options, scan_prefetch_depth=depth),
        placement=PlacementConfig(cloud_level=1),
        pcache=PCacheConfig(data_budget_bytes=4 << 10),
        cloud_error_rate=error_rate,
        cloud_fault_seed=seed,
        cloud_fault_op_prefixes=("cloud.get",),
    )
    return RocksMashStore.create(config)


def run_workload(store: RocksMashStore, workload, scan_reqs):
    for op, i, value in workload:
        if op == "put":
            store.put(key_of(i), value)
        elif op == "delete":
            store.delete(key_of(i))
        elif op == "flush":
            store.flush()
    out = [store.scan()]
    for start, span in scan_reqs:
        out.append(store.scan(key_of(start), key_of(start + span)))
        out.append(store.scan(key_of(start), None, limit=5))
    return out


@settings(max_examples=15, deadline=None)
@given(ops=ops, scan_reqs=scans, error=st.sampled_from((0.0, 0.02, 0.05)), seed=st.integers(0, 2**16))
def test_depths_agree_and_spans_conserve(ops, scan_reqs, error, seed):
    results = {}
    for depth in DEPTHS:
        store = build_store(depth, error, seed)
        results[depth] = run_workload(store, ops, scan_reqs)
        for span in store.tracer.spans:
            assert span_conserved(span), (
                f"depth={depth} span {span.op} leaks time:"
                f" tiers={span.tiers.as_dict()} elapsed={span.elapsed}"
            )
        # Speculation is bounded: every issued prefetch is consumed or
        # counted as waste, never silently dropped.
        issued = store.tracer.event_count("prefetch_issue")
        hits = store.tracer.event_count("prefetch_hit")
        waste = store.tracer.event_count("prefetch_waste")
        assert hits + waste == issued
        if depth == 0:
            assert issued == 0
    assert results[0] == results[1] == results[4]
