"""Properties of the workload-adaptive tuning controller (repro.tune).

Three guarantees the design leans on:

* **Determinism** — the controller is a pure function of its op stream and
  observed signals: replaying the same stream yields a byte-identical knob
  trajectory (and digest). Without this, adaptive runs could not assert
  outcome-digest equality against static runs.
* **Anti-oscillation** — under stationary window statistics the two-window
  confirmation rule reaches a fixed point: after a bounded prefix, no knob
  ever changes again (and in particular no A→B→A flapping).
* **Memory budget** — a Monkey allocation never spends more weighted
  filter memory on the observed tree shape than the uniform baseline it
  replaces, for *any* level-size vector and point-read share.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.compaction import CompactionStats
from repro.lsm.options import Options
from repro.obs.trace import Tracer
from repro.sim.clock import SimClock
from repro.tune import TuningConfig, TuningController, monkey_allocation


class StubDB:
    def __init__(self):
        self.options = Options()
        self.compaction_stats = CompactionStats()
        self.blob_store = None
        self.levels = []

    def level_summary(self):
        return self.levels


def drive(op_stream, interval=7):
    """Run a controller over an op stream against a stub engine whose level
    shape evolves deterministically with the write count (so the filter
    rule sees a moving signal derived purely from the stream)."""
    clock = SimClock()
    controller = TuningController(
        db=StubDB(),
        tracer=Tracer(clock),
        clock=clock,
        config=TuningConfig(interval_ops=interval),
    )
    writes = 0
    for kind, nbytes in op_stream:
        if kind in ("put", "write"):
            writes += nbytes
            controller.db.levels = [
                (level, 1, writes * (10**level))
                for level in range(min(3, 1 + writes // 2000))
            ]
        controller.record_op(kind, nbytes)
    return controller


op_streams = st.lists(
    st.tuples(
        st.sampled_from(["get", "put", "scan", "multi_get", "delete"]),
        st.integers(min_value=0, max_value=8192),
    ),
    min_size=20,
    max_size=400,
)


class TestDeterminism:
    @given(stream=op_streams)
    @settings(max_examples=40, deadline=None)
    def test_same_stream_same_trajectory(self, stream):
        a = drive(stream)
        b = drive(stream)
        assert a.trajectory == b.trajectory
        assert a.trajectory_digest() == b.trajectory_digest()
        assert a.knobs() == b.knobs()


class TestAntiOscillation:
    @given(
        point=st.integers(min_value=0, max_value=10),
        scan=st.integers(min_value=0, max_value=10),
        write=st.integers(min_value=0, max_value=10),
        nbytes=st.integers(min_value=1, max_value=8192),
        level_seed=st.integers(min_value=0, max_value=1 << 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_stationary_workload_reaches_fixed_point(
        self, point, scan, write, nbytes, level_seed
    ):
        clock = SimClock()
        db = StubDB()
        db.levels = [
            (level, 1, 1 + (level_seed >> (4 * level)) % (1 << 20))
            for level in range(3)
        ]
        window = ["get"] * point + ["scan"] * scan + ["put"] * write or ["get"]
        # Stationarity means every *evaluation window* sees the same mix:
        # the interval must tile the repeating pattern. (A 1-op interval
        # would slice a scan+write mix into alternating scan-only and
        # write-only windows — real workload shifts, which the controller
        # rightly follows.)
        controller = TuningController(
            db=db,
            tracer=Tracer(clock),
            clock=clock,
            config=TuningConfig(interval_ops=len(window)),
        )
        decisions = []
        for _ in range(20):  # 20 identical windows
            for kind in window:
                controller.record_op(kind, nbytes if kind == "put" else 0)
            decisions.append(controller.trajectory[-1])
        # Every knob rule's target is a function of (current knob, stats);
        # with stats frozen, the walkable knobs reach their bound within
        # the ladder length and the confirmation rule pins everything else
        # after two windows. The tail must be completely quiet.
        tail = decisions[-6:]
        assert all(not d.changed for d in tail), [d.changed for d in decisions]
        # And quiet means *identical*, not alternating:
        assert len({d.knobs for d in tail}) == 1

    def test_interval_boundary_never_splits_confirmation(self):
        # A target pending at eval N must be compared at eval N+1 even if
        # the windows contain different op counts (interval accounting).
        clock = SimClock()
        db = StubDB()
        db.levels = [(0, 1, 1 << 20), (2, 2, 50 << 20)]
        controller = TuningController(
            db=db, tracer=Tracer(clock), clock=clock, config=TuningConfig(interval_ops=3)
        )
        for _ in range(6):
            controller.record_op("get")
        assert db.options.filter_allocation is not None


class TestMemoryBudget:
    @given(
        level_bytes=st.lists(
            st.integers(min_value=0, max_value=1 << 32), min_size=1, max_size=8
        ),
        budget=st.integers(min_value=1, max_value=30),
        multiplier=st.integers(min_value=2, max_value=20),
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_allocation_never_exceeds_uniform_budget(
        self, level_bytes, budget, multiplier, share
    ):
        alloc = monkey_allocation(
            level_bytes,
            budget_bits_per_key=budget,
            size_multiplier=multiplier,
            point_read_share=share,
        )
        total = sum(level_bytes)
        if total == 0:
            assert max(alloc.bits_per_level) <= budget
            return
        spend = sum(
            (b / total) * alloc.bits_for(i) for i, b in enumerate(level_bytes)
        )
        assert spend <= budget + 1e-9
        # Bits never increase with depth (Monkey's shape) and stay capped.
        bits = alloc.bits_per_level
        assert all(a >= b for a, b in zip(bits, bits[1:]))
        assert all(0 <= b <= 30 for b in bits)
