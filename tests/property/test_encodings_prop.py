"""Property-based tests for encodings and on-disk record formats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.format import BlockHandle, decode_handle, encode_handle
from repro.lsm.version import FileMetaData, VersionEdit
from repro.lsm.wal import LogReader, RECORD_HEADER_SIZE
from repro.lsm.write_batch import WriteBatch
from repro.mash.xwal import decode_shard_record, encode_shard_record
from repro.util.crc import crc32, mask, masked_crc32, unmask, verify_masked_crc32
from repro.util.encoding import (
    TYPE_DELETION,
    TYPE_VALUE,
    compare_internal,
    make_internal_key,
    parse_internal_key,
)
from repro.util.varint import (
    decode_varint,
    encode_varint,
    get_length_prefixed,
    put_length_prefixed,
)

keys = st.binary(min_size=0, max_size=64)
values = st.binary(min_size=0, max_size=256)
sequences = st.integers(min_value=0, max_value=(1 << 56) - 1)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        decoded, end = decode_varint(encode_varint(value))
        assert decoded == value

    @given(st.lists(st.binary(max_size=100), max_size=20))
    def test_length_prefixed_stream(self, chunks):
        out = bytearray()
        for chunk in chunks:
            put_length_prefixed(out, chunk)
        pos = 0
        decoded = []
        for _ in chunks:
            chunk, pos = get_length_prefixed(bytes(out), pos)
            decoded.append(chunk)
        assert decoded == chunks
        assert pos == len(out)


class TestCrc:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_mask_bijective(self, value):
        assert unmask(mask(value)) == value

    @given(st.binary(max_size=500))
    def test_verify_accepts(self, data):
        assert verify_masked_crc32(data, masked_crc32(data))

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 7))
    def test_bitflip_detected(self, data, bit):
        stored = masked_crc32(data)
        corrupted = bytearray(data)
        corrupted[0] ^= 1 << bit
        assert not verify_masked_crc32(bytes(corrupted), stored)

    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_chaining_equals_concat(self, a, b):
        assert crc32(a + b) == crc32(b, seed=crc32(a))


class TestInternalKey:
    @given(keys, sequences, st.sampled_from([TYPE_VALUE, TYPE_DELETION]))
    def test_roundtrip(self, user_key, seq, vtype):
        parsed = parse_internal_key(make_internal_key(user_key, seq, vtype))
        assert (parsed.user_key, parsed.sequence, parsed.value_type) == (
            user_key,
            seq,
            vtype,
        )

    @given(
        st.lists(
            st.tuples(keys, sequences, st.sampled_from([TYPE_VALUE, TYPE_DELETION])),
            min_size=2,
            max_size=30,
        )
    )
    def test_order_matches_reference(self, parts):
        """compare_internal == (user_key asc, (seq, type) desc)."""
        import functools

        ikeys = [make_internal_key(k, s, t) for k, s, t in parts]
        got = sorted(ikeys, key=functools.cmp_to_key(compare_internal))
        ref = sorted(ikeys, key=lambda ik: (
            parse_internal_key(ik).user_key,
            -((parse_internal_key(ik).sequence << 8) | parse_internal_key(ik).value_type),
        ))
        assert got == ref


class TestHandles:
    @given(st.integers(0, 2**48), st.integers(0, 2**32))
    def test_roundtrip(self, offset, size):
        handle, _ = decode_handle(encode_handle(BlockHandle(offset, size)))
        assert handle == BlockHandle(offset, size)


batch_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("del"), keys, st.just(b"")),
    ),
    max_size=30,
)


class TestWriteBatch:
    @given(batch_ops, sequences)
    def test_roundtrip(self, ops, seq):
        batch = WriteBatch()
        for kind, k, v in ops:
            if kind == "put":
                batch.put(k, v)
            else:
                batch.delete(k)
        batch.sequence = seq
        decoded = WriteBatch.decode(batch.encode())
        assert decoded.sequence == seq
        assert [(o.value_type, o.key, o.value) for o in decoded] == [
            (TYPE_VALUE if kind == "put" else TYPE_DELETION, k, v) for kind, k, v in ops
        ]


class TestWalFraming:
    @given(st.lists(st.binary(max_size=300), max_size=15))
    def test_roundtrip(self, records):
        from repro.util.crc import masked_crc32 as mc
        from repro.util.encoding import encode_fixed32

        stream = bytearray()
        for payload in records:
            stream += encode_fixed32(mc(payload)) + encode_fixed32(len(payload)) + payload
        assert list(LogReader(bytes(stream))) == records

    @given(st.lists(st.binary(min_size=1, max_size=100), min_size=1, max_size=8), st.data())
    def test_truncation_yields_prefix(self, records, data):
        """Any truncation recovers a prefix of the records, never garbage."""
        from repro.util.crc import masked_crc32 as mc
        from repro.util.encoding import encode_fixed32

        stream = bytearray()
        for payload in records:
            stream += encode_fixed32(mc(payload)) + encode_fixed32(len(payload)) + payload
        cut = data.draw(st.integers(0, len(stream)))
        recovered = list(LogReader(bytes(stream[:cut])))
        assert recovered == records[: len(recovered)]
        assert len(recovered) <= len(records)


class TestXWalRecord:
    @given(
        st.lists(
            st.tuples(
                sequences,
                st.sampled_from([TYPE_VALUE, TYPE_DELETION]),
                keys,
                values,
            ),
            max_size=20,
        )
    )
    def test_roundtrip(self, ops):
        ops = [
            (s, t, k, v if t == TYPE_VALUE else b"") for s, t, k, v in ops
        ]
        assert decode_shard_record(encode_shard_record(ops)) == ops


class TestVersionEdit:
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(1, 1000), keys, keys),
            max_size=10,
        ),
        st.sets(st.tuples(st.integers(0, 6), st.integers(1, 1000)), max_size=10),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, new_files, deleted):
        edit = VersionEdit(log_number=3, next_file_number=50, last_sequence=99)
        for level, number, lo, hi in new_files:
            edit.add_file(
                level,
                FileMetaData(
                    number,
                    1000,
                    make_internal_key(min(lo, hi), 5, TYPE_VALUE),
                    make_internal_key(max(lo, hi), 5, TYPE_VALUE),
                ),
            )
        edit.deleted_files = deleted
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.new_files == edit.new_files
        assert decoded.deleted_files == deleted
        assert decoded.last_sequence == 99
