"""Property test: tier attribution conserves elapsed time on every span.

For any sequence of store operations, each recorded span's tier vector
(local + cloud + cpu seconds) must sum to its stopwatch elapsed time —
including operations whose I/O runs through fork/join regions (multi_get
waves, xWAL shard syncs, parallel subcompactions, demotion batches).
"""

from hypothesis import given, settings, strategies as st

from repro.mash.store import RocksMashStore, StoreConfig
from repro.obs.trace import span_conserved

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 40), st.binary(min_size=1, max_size=200)),
        st.tuples(st.just("get"), st.integers(0, 40), st.just(b"")),
        st.tuples(st.just("delete"), st.integers(0, 40), st.just(b"")),
        st.tuples(st.just("scan"), st.integers(0, 40), st.just(b"")),
        st.tuples(st.just("multi_get"), st.integers(0, 40), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


def key_of(i: int) -> bytes:
    return b"key%04d" % i


@settings(max_examples=25, deadline=None)
@given(ops=ops)
def test_all_spans_conserved(ops):
    store = RocksMashStore.create(StoreConfig().small())
    for op, i, value in ops:
        if op == "put":
            store.put(key_of(i), value)
        elif op == "get":
            store.get(key_of(i))
        elif op == "delete":
            store.delete(key_of(i))
        elif op == "scan":
            store.scan(key_of(i), key_of(i + 10))
        elif op == "multi_get":
            store.multi_get([key_of(i + j) for j in range(6)])
        elif op == "flush":
            store.flush()
    assert len(store.tracer.spans) >= len(ops)
    for span in store.tracer.spans:
        assert span_conserved(span), (
            f"span {span.op} leaks time: tiers={span.tiers.as_dict()}"
            f" elapsed={span.elapsed}"
        )
    # Device-busy totals never exceed what was charged somewhere.
    totals = store.tracer.totals
    assert totals.local >= 0 and totals.cloud >= 0 and totals.cpu >= 0
