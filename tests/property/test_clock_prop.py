"""Property-based tests for SimClock fork/join/merge laws.

The whole timing model rests on these algebraic properties: forked children
accumulate independently, joining takes the max, and nesting composes — so
any fork/join program is deterministic regardless of how its branches are
arranged.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import ClockCharged, ForkJoinRegion, SimClock

durations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)
starts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestForkJoinLaws:
    @given(starts, st.integers(min_value=1, max_value=8))
    def test_join_of_unadvanced_children_is_noop(self, start, n):
        clock = SimClock(now=start)
        children = clock.fork(n)
        assert clock.join(children) == start
        assert clock.now == start

    @given(starts, durations)
    def test_join_is_max(self, start, work):
        clock = SimClock(now=start)
        children = clock.fork(len(work))
        for child, seconds in zip(children, work):
            child.advance(seconds)
        assert clock.join(children) == pytest.approx(start + max(work))

    @given(starts, durations)
    def test_join_idempotent(self, start, work):
        clock = SimClock(now=start)
        children = clock.fork(len(work))
        for child, seconds in zip(children, work):
            child.advance(seconds)
        first = clock.join(children)
        assert clock.join(children) == first

    @given(starts, durations, durations)
    def test_nested_fork_join_deterministic(self, start, outer, inner):
        """A fork inside a fork joins to start + max(outer_i + max(inner))."""

        def run() -> float:
            clock = SimClock(now=start)
            children = clock.fork(len(outer))
            for child, seconds in zip(children, outer):
                child.advance(seconds)
                grandchildren = child.fork(len(inner))
                for grandchild, nested in zip(grandchildren, inner):
                    grandchild.advance(nested)
                child.join(grandchildren)
            return clock.join(children)

        first, second = run(), run()
        assert first == second
        assert first == pytest.approx(start + max(outer) + max(inner))

    @given(starts, durations)
    def test_merge_never_rewinds(self, start, work):
        """merge() with back-dated children keeps the parent monotonic."""
        clock = SimClock(now=start)
        children = [clock.child(start=start * 0.5) for _ in work]
        for child, seconds in zip(children, work):
            child.advance(seconds)
        before = clock.now
        after = clock.merge(children)
        assert after >= before
        assert after == max(before, max(child.now for child in children))

    @given(starts)
    def test_child_rejects_negative_start(self, start):
        clock = SimClock(now=start)
        with pytest.raises(ValueError):
            clock.child(start=-1.0)


class _Host(ClockCharged):
    def __init__(self, clock: SimClock) -> None:
        self.clock = clock


class TestClockScope:
    @given(starts, durations)
    def test_scope_restores_on_exit(self, start, work):
        clock = SimClock(now=start)
        host = _Host(clock)
        for seconds in work:
            child = clock.child()
            with host.clock_scope(child):
                host.clock.advance(seconds)
            assert host.clock is clock

    @given(starts)
    def test_scope_restores_on_exception(self, start):
        clock = SimClock(now=start)
        host = _Host(clock)
        with pytest.raises(RuntimeError):
            with host.clock_scope(clock.child()):
                raise RuntimeError("boom")
        assert host.clock is clock

    @given(starts, durations)
    def test_nested_scopes_restore_intermediate(self, start, work):
        clock = SimClock(now=start)
        host = _Host(clock)
        outer = clock.child()
        with host.clock_scope(outer):
            for seconds in work:
                inner = outer.child()
                with host.clock_scope(inner):
                    assert host.clock is inner
                    host.clock.advance(seconds)
                assert host.clock is outer
        assert host.clock is clock

    @given(starts, durations)
    def test_region_equals_manual_fork_join(self, start, work):
        manual = SimClock(now=start)
        children = manual.fork(len(work))
        for child, seconds in zip(children, work):
            child.advance(seconds)
        manual.join(children)

        clock = SimClock(now=start)
        host = _Host(clock)
        region = ForkJoinRegion(clock, [host])
        for seconds in work:
            with region.branch():
                host.clock.advance(seconds)
        region.join()
        assert clock.now == manual.now
