"""Property-based whole-store tests: dict-model equivalence, durability,
pcache consistency, xWAL shard partitioning."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch
from repro.mash.pcache import PCacheConfig, PersistentCache
from repro.mash.store import RocksMashStore, StoreConfig
from repro.mash.xwal import XWalConfig, XWalReplayer, XWalWriter, shard_of
from repro.sim.clock import SimClock
from repro.storage.env import LocalEnv
from repro.storage.local import LocalDevice

small_keys = st.binary(min_size=1, max_size=12)
small_values = st.binary(min_size=0, max_size=60)

db_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), small_keys, small_values),
        st.tuples(st.just("del"), small_keys, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
    ),
    max_size=80,
)


def tiny_options():
    return Options(
        write_buffer_size=1 << 10,
        block_size=256,
        max_bytes_for_level_base=4 << 10,
        target_file_size_base=1 << 10,
        block_cache_bytes=0,
    )


class TestDBModel:
    @given(db_ops)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_db_matches_dict(self, ops):
        env = LocalEnv(LocalDevice(SimClock()))
        db = DB.open(env, "db/", tiny_options())
        model: dict[bytes, bytes] = {}
        for kind, k, v in ops:
            if kind == "put":
                db.put(k, v)
                model[k] = v
            elif kind == "del":
                db.delete(k)
                model.pop(k, None)
            else:
                db.flush()
        for k in {k for _, k, _ in ops if k}:
            assert db.get(k) == model.get(k)
        assert dict(db.scan()) == model
        db.close()

    @given(db_ops)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_reopen_preserves_everything(self, ops):
        env = LocalEnv(LocalDevice(SimClock()))
        db = DB.open(env, "db/", tiny_options())
        model: dict[bytes, bytes] = {}
        for kind, k, v in ops:
            if kind == "put":
                db.put(k, v)
                model[k] = v
            elif kind == "del":
                db.delete(k)
                model.pop(k, None)
            else:
                db.flush()
        db.close()
        db2 = DB.open(env, "db/", tiny_options())
        assert dict(db2.scan()) == model
        db2.close()

    @given(db_ops, st.booleans())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_synced_writes_survive_crash(self, ops, crash_mid):
        """Durability: every acknowledged (synced) write survives a crash."""
        device = LocalDevice(SimClock())
        env = LocalEnv(device)
        db = DB.open(env, "db/", tiny_options())
        model: dict[bytes, bytes] = {}
        for kind, k, v in ops:
            if kind == "put":
                db.put(k, v, sync=True)
                model[k] = v
            elif kind == "del":
                db.delete(k, sync=True)
                model.pop(k, None)
            else:
                db.flush()
        device.crash()
        db2 = DB.open(env, "db/", tiny_options())
        assert dict(db2.scan()) == model
        db2.close()


class TestRocksMashModel:
    @given(db_ops)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_store_matches_dict_through_crash(self, ops):
        store = RocksMashStore.create(StoreConfig().small())
        model: dict[bytes, bytes] = {}
        for kind, k, v in ops:
            if kind == "put":
                store.put(k, v)
                model[k] = v
            elif kind == "del":
                store.delete(k)
                model.pop(k, None)
            else:
                store.flush()
        store2 = store.reopen(crash=True)
        assert dict(store2.scan()) == model


class TestXWalPartitioning:
    @given(
        st.lists(st.tuples(small_keys, small_values), min_size=1, max_size=40),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_op_recovered_exactly_once(self, puts, shards):
        device = LocalDevice(SimClock())
        env = LocalEnv(device)
        config = XWalConfig(num_shards=shards)
        writer = XWalWriter(env, device, "db/", 1, config)
        seq = 1
        expected = set()
        for k, v in puts:
            batch = WriteBatch().put(k, v)
            batch.sequence = seq
            expected.add((seq, 1, k, v))
            seq += 1
            writer.add_record(batch.encode())
        writer.close()
        replayer = XWalReplayer(env, device, "db/", config)
        assert set(replayer.replay(1)) == expected

    @given(small_keys, st.integers(1, 32))
    def test_shard_stable_and_in_range(self, key, n):
        s = shard_of(key, n)
        assert 0 <= s < n
        assert shard_of(key, n) == s


class TestPCacheModel:
    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("put"),
                    st.sampled_from(["a.sst", "b.sst", "c.sst"]),
                    st.integers(0, 10),
                    st.binary(min_size=1, max_size=40),
                ),
                st.tuples(
                    st.just("drop"),
                    st.sampled_from(["a.sst", "b.sst", "c.sst"]),
                    st.just(0),
                    st.just(b""),
                ),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_get_returns_exactly_what_was_put(self, ops):
        device = LocalDevice(SimClock())
        cache = PersistentCache.open(
            device, PCacheConfig(data_budget_bytes=100_000, sync_every_n_appends=1)
        )
        shadow: dict[tuple[str, int], bytes] = {}
        for op in ops:
            if op[0] == "put":
                _, name, offset, payload = op
                cache.put_data(name, offset, payload)
                # Blocks are immutable: a re-put of a live (file, offset) is
                # a no-op, so the first payload wins until the file is
                # dropped.
                shadow.setdefault((name, offset), payload)
            else:
                _, name, _, _ = op
                cache.drop_file(name)
                for key in [k for k in shadow if k[0] == name]:
                    del shadow[key]
        for (name, offset), payload in shadow.items():
            assert cache.get_data(name, offset) == payload
        # Restart: contents identical (budget was never exceeded).
        cache.sync()
        cache2 = PersistentCache.open(device, cache.config)
        for (name, offset), payload in shadow.items():
            assert cache2.get_data(name, offset) == payload
        for name in ["a.sst", "b.sst", "c.sst"]:
            for offset in range(11):
                if (name, offset) not in shadow:
                    assert cache2.get_data(name, offset) is None
